// Package lint is a small, dependency-free static-analysis framework that
// enforces the repository's determinism and taxonomy invariants. The
// measurement pipeline's claim to bit-identical same-seed runs (DESIGN.md
// "Determinism") holds only as long as no code path consults the wall
// clock, draws from process-global randomness, or iterates a map in
// Go's randomized order; and the paper's Table 2/Table 4 error taxonomy
// stays trustworthy only as long as every switch over a taxonomy enum
// handles every class. PR 1 and PR 2 established those invariants by
// convention; this package makes the toolchain enforce them.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis — Analyzer, Pass, Reportf — but is built on nothing beyond
// go/ast, go/parser, go/types, and go/importer, because the module carries
// zero dependencies and must stay that way.
//
// # Suppressions
//
// A finding is suppressed by a comment of the form
//
//	//lint:allow <check> <reason...>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory: a suppression explains itself or it does not
// suppress. The driver itself polices the mechanism with two built-in
// checks: "allow-syntax" fires on a malformed //lint:allow comment, and
// "allow-unused" fires on a suppression that matches no finding, so stale
// allows cannot linger after the code they excused is gone.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Checks the driver itself reports, outside any Analyzer.
const (
	// CheckAllowSyntax flags a //lint:allow comment missing its check name
	// or its reason.
	CheckAllowSyntax = "allow-syntax"
	// CheckAllowUnused flags a well-formed //lint:allow that suppressed
	// nothing.
	CheckAllowUnused = "allow-unused"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Check names the analyzer (or driver check) that produced the finding.
	Check string
	// Pos locates the violation.
	Pos token.Position
	// Message explains the violation and the sanctioned alternative.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name identifies the check in findings and in //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Match restricts the analyzer to packages whose import path it accepts;
	// nil means every package.
	Match func(pkgPath string) bool
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the load.
	Fset *token.FileSet
	// Files are the package's parsed non-test files, in filename order.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression annotations.
	Info *types.Info
	// Path is the package's import path.
	Path string
	// Module is the import path of the module under analysis, so checks can
	// distinguish locally-declared types from imported ones.
	Module string

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// allow is one parsed //lint:allow comment.
type allow struct {
	check  string
	pos    token.Position
	broken bool // malformed: missing check or reason
	used   bool
}

// allowDirective is the comment prefix that starts a suppression.
const allowDirective = "//lint:allow"

// collectAllows parses every //lint:allow comment in the file set,
// returning them keyed by (filename, line). A suppression on line L covers
// findings on L (trailing comment) and on L+1 (comment on its own line),
// which is recorded by indexing the allow under both lines.
func collectAllows(fset *token.FileSet, files []*ast.File) map[string][]*allow {
	byLine := make(map[string][]*allow)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowDirective)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				a := &allow{pos: pos}
				if len(fields) < 2 {
					// Either the check or the reason is missing: a
					// suppression explains itself or it does not suppress.
					a.broken = true
				} else {
					a.check = fields[0]
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := lineKey(pos.Filename, line)
					byLine[key] = append(byLine[key], a)
				}
			}
		}
	}
	return byLine
}

func lineKey(filename string, line int) string {
	return fmt.Sprintf("%s:%d", filename, line)
}

// applySuppressions filters findings through the //lint:allow comments of
// the package they were found in, marking each matched allow as used.
// Broken allows never suppress.
func applySuppressions(findings []Finding, byLine map[string][]*allow) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, a := range byLine[lineKey(f.Pos.Filename, f.Pos.Line)] {
			if !a.broken && a.check == f.Check {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	return kept
}

// allowFindings reports driver findings for broken and unused allows.
// ranChecks names the analyzers that actually ran on the package, so an
// allow for a check that was not exercised in this run is still reported
// only when its check name is unknown or its suppression went unused.
func allowFindings(byLine map[string][]*allow, ranChecks map[string]bool) []Finding {
	var out []Finding
	seen := make(map[*allow]bool)
	for _, allows := range byLine {
		for _, a := range allows {
			if seen[a] {
				continue
			}
			seen[a] = true
			switch {
			case a.broken:
				out = append(out, Finding{
					Check: CheckAllowSyntax,
					Pos:   a.pos,
					Message: fmt.Sprintf("malformed %s comment: want %s <check> <reason>",
						allowDirective, allowDirective),
				})
			case !a.used && ranChecks[a.check]:
				out = append(out, Finding{
					Check: CheckAllowUnused,
					Pos:   a.pos,
					Message: fmt.Sprintf("%s %s suppresses nothing; delete it or move it to the offending line",
						allowDirective, a.check),
				})
			case !a.used && !ranChecks[a.check]:
				out = append(out, Finding{
					Check:   CheckAllowUnused,
					Pos:     a.pos,
					Message: fmt.Sprintf("%s names unknown check %q", allowDirective, a.check),
				})
			}
		}
	}
	return out
}

// sortFindings puts findings in deterministic order: by file, line,
// column, check name, then message.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// Run loads the packages matched by patterns (resolved relative to dir),
// runs every analyzer over them, applies //lint:allow suppressions, and
// returns all surviving findings in deterministic order. It is the single
// entry point shared by cmd/govlint and the tests.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, pkg := range pkgs {
		var raw []Finding
		ran := map[string]bool{CheckAllowSyntax: true, CheckAllowUnused: true}
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			ran[a.Name] = true
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				Module:   pkg.Module,
				findings: &raw,
			}
			a.Run(pass)
		}
		byLine := collectAllows(pkg.Fset, pkg.Files)
		kept := applySuppressions(raw, byLine)
		kept = append(kept, allowFindings(byLine, ran)...)
		all = append(all, kept...)
	}
	sortFindings(all)
	return all, nil
}
