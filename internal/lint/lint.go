// Package lint is a small, dependency-free static-analysis framework that
// enforces the repository's determinism and taxonomy invariants. The
// measurement pipeline's claim to bit-identical same-seed runs (DESIGN.md
// "Determinism") holds only as long as no code path consults the wall
// clock, draws from process-global randomness, or iterates a map in
// Go's randomized order; and the paper's Table 2/Table 4 error taxonomy
// stays trustworthy only as long as every switch over a taxonomy enum
// handles every class. PR 1 and PR 2 established those invariants by
// convention; this package makes the toolchain enforce them.
//
// The framework deliberately mirrors the shape of golang.org/x/tools'
// go/analysis — Analyzer, Pass, Reportf — but is built on nothing beyond
// go/ast, go/parser, go/types, and go/importer, because the module carries
// zero dependencies and must stay that way.
//
// # Suppressions
//
// A finding is suppressed by a comment of the form
//
//	//lint:allow <check> <reason...>
//
// placed on the offending line or on the line directly above it. The
// reason is mandatory: a suppression explains itself or it does not
// suppress. The driver itself polices the mechanism with two built-in
// checks: "allow-syntax" fires on a malformed //lint:allow comment, and
// "allow-unused" fires on a suppression that matches no finding, so stale
// allows cannot linger after the code they excused is gone.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Checks the driver itself reports, outside any Analyzer.
const (
	// CheckAllowSyntax flags a //lint:allow comment missing its check name
	// or its reason.
	CheckAllowSyntax = "allow-syntax"
	// CheckAllowUnused flags a well-formed //lint:allow that suppressed
	// nothing.
	CheckAllowUnused = "allow-unused"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Check names the analyzer (or driver check) that produced the finding.
	Check string
	// Pos locates the violation.
	Pos token.Position
	// Message explains the violation and the sanctioned alternative.
	Message string
	// Suppressed records that a //lint:allow comment covers the finding.
	// Run drops suppressed findings; RunAll returns them marked, so the
	// -json output can carry the full picture.
	Suppressed bool
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Analyzer is one named invariant check. An analyzer is either
// per-package (Run set) or module-wide (RunModule set): per-package
// analyzers see one type-checked package at a time, module analyzers see
// the whole load and its call graph.
type Analyzer struct {
	// Name identifies the check in findings and in //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Subchecks are additional check names the analyzer may report under
	// (and that //lint:allow comments may name), e.g. datasetdecl's
	// "datasetdecl-dynamic".
	Subchecks []string
	// Match restricts the analyzer to packages whose import path it accepts;
	// nil means every package. For a module analyzer, Match limits which
	// packages' findings are kept — the analysis itself always sees the
	// whole module.
	Match func(pkgPath string) bool
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass)
	// RunModule inspects the whole loaded module at once.
	RunModule func(*ModulePass)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions for every file in the load.
	Fset *token.FileSet
	// Files are the package's parsed non-test files, in filename order.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's expression annotations.
	Info *types.Info
	// Path is the package's import path.
	Path string
	// Module is the import path of the module under analysis, so checks can
	// distinguish locally-declared types from imported ones.
	Module string

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Check:   p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// ModulePass carries a module analyzer's view of the whole load.
type ModulePass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Prog is the loaded module and its call graph.
	Prog *Program

	findings *[]Finding
}

// Reportf records a finding at pos under the analyzer's name. Positions
// are resolved through the owning package's file set: the parallel loader
// gives each package its own.
func (p *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	p.ReportCheckf(p.Analyzer.Name, pkg, pos, format, args...)
}

// ReportCheckf records a finding under an explicit check name, which must
// be the analyzer's name or one of its Subchecks.
func (p *ModulePass) ReportCheckf(check string, pkg *Package, pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Check:   check,
		Pos:     pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// allow is one parsed //lint:allow comment.
type allow struct {
	check  string
	pos    token.Position
	broken bool // malformed: missing check or reason
	used   bool
}

// allowDirective is the comment prefix that starts a suppression.
const allowDirective = "//lint:allow"

// collectAllows parses every //lint:allow comment in the file set,
// returning them keyed by (filename, line). A suppression on line L covers
// findings on L (trailing comment) and on L+1 (comment on its own line),
// which is recorded by indexing the allow under both lines.
func collectAllows(fset *token.FileSet, files []*ast.File) map[string][]*allow {
	byLine := make(map[string][]*allow)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowDirective)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				a := &allow{pos: pos}
				if len(fields) < 2 {
					// Either the check or the reason is missing: a
					// suppression explains itself or it does not suppress.
					a.broken = true
				} else {
					a.check = fields[0]
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := lineKey(pos.Filename, line)
					byLine[key] = append(byLine[key], a)
				}
			}
		}
	}
	return byLine
}

func lineKey(filename string, line int) string {
	return fmt.Sprintf("%s:%d", filename, line)
}

// applySuppressions marks findings covered by a //lint:allow comment in
// the package they were found in, marking each matched allow as used.
// Broken allows never suppress.
func applySuppressions(findings []Finding, byLine map[string][]*allow) {
	for i := range findings {
		f := &findings[i]
		for _, a := range byLine[lineKey(f.Pos.Filename, f.Pos.Line)] {
			if !a.broken && a.check == f.Check {
				a.used = true
				f.Suppressed = true
			}
		}
	}
}

// allowFindings reports driver findings for broken and unused allows.
// ranChecks names the checks that actually ran on the package;
// knownChecks names every check the analyzer set could report anywhere,
// so an allow naming a real check that simply did not run on this package
// (a module check scoped elsewhere) is distinguished from a typo.
func allowFindings(byLine map[string][]*allow, ranChecks, knownChecks map[string]bool) []Finding {
	var out []Finding
	seen := make(map[*allow]bool)
	for _, allows := range byLine {
		for _, a := range allows {
			if seen[a] {
				continue
			}
			seen[a] = true
			switch {
			case a.broken:
				out = append(out, Finding{
					Check: CheckAllowSyntax,
					Pos:   a.pos,
					Message: fmt.Sprintf("malformed %s comment: want %s <check> <reason>",
						allowDirective, allowDirective),
				})
			case !a.used && ranChecks[a.check]:
				out = append(out, Finding{
					Check: CheckAllowUnused,
					Pos:   a.pos,
					Message: fmt.Sprintf("%s %s suppresses nothing; delete it or move it to the offending line",
						allowDirective, a.check),
				})
			case !a.used && knownChecks[a.check]:
				out = append(out, Finding{
					Check: CheckAllowUnused,
					Pos:   a.pos,
					Message: fmt.Sprintf("%s %s suppresses nothing: the check did not run on this package",
						allowDirective, a.check),
				})
			case !a.used:
				out = append(out, Finding{
					Check:   CheckAllowUnused,
					Pos:     a.pos,
					Message: fmt.Sprintf("%s names unknown check %q", allowDirective, a.check),
				})
			}
		}
	}
	return out
}

// sortFindings puts findings in deterministic order: by file, line,
// column, check name, then message.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// Run loads the packages matched by patterns (resolved relative to dir),
// runs every analyzer over them, applies //lint:allow suppressions, and
// returns all surviving findings in deterministic order. It is the single
// entry point shared by cmd/govlint and the tests.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	all, err := RunAll(dir, patterns, analyzers, 0)
	if err != nil {
		return nil, err
	}
	kept := all[:0]
	for _, f := range all {
		if !f.Suppressed {
			kept = append(kept, f)
		}
	}
	return kept, nil
}

// RunAll is Run without the suppression filter: suppressed findings are
// returned with Suppressed set, for machine-readable output that carries
// the full picture. workers bounds the loader's type-checking pool
// (0 = automatic).
func RunAll(dir string, patterns []string, analyzers []*Analyzer, workers int) ([]Finding, error) {
	pkgs, err := LoadWorkers(dir, patterns, workers)
	if err != nil {
		return nil, err
	}
	return analyze(pkgs, analyzers), nil
}

// knownCheckSet collects every check name the analyzer set can report:
// analyzer names, subchecks, and the driver's own checks.
func knownCheckSet(analyzers []*Analyzer) map[string]bool {
	known := map[string]bool{CheckAllowSyntax: true, CheckAllowUnused: true}
	for _, a := range analyzers {
		known[a.Name] = true
		for _, sub := range a.Subchecks {
			known[sub] = true
		}
	}
	return known
}

// analyze runs the per-package and module analyzers over a loaded package
// list and returns every finding — suppressed ones marked — in
// deterministic order.
func analyze(pkgs []*Package, analyzers []*Analyzer) []Finding {
	prog := NewProgram(pkgs)
	known := knownCheckSet(analyzers)

	perPkg := make([][]Finding, len(pkgs))
	ranByPkg := make([]map[string]bool, len(pkgs))
	idxOf := make(map[*Package]int, len(pkgs))
	for i, pkg := range pkgs {
		idxOf[pkg] = i
		ran := map[string]bool{CheckAllowSyntax: true, CheckAllowUnused: true}
		ranByPkg[i] = ran
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			ran[a.Name] = true
			for _, sub := range a.Subchecks {
				ran[sub] = true
			}
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Path:     pkg.Path,
				Module:   pkg.Module,
				findings: &perPkg[i],
			}
			a.Run(pass)
		}
	}

	// Module analyzers see the whole load; their findings are routed to
	// the package owning the file so that package's //lint:allow comments
	// apply, and dropped when that package was excluded by Match.
	var moduleFindings []Finding
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{Analyzer: a, Prog: prog, findings: &moduleFindings}
		a.RunModule(mp)
		routed := moduleFindings
		moduleFindings = moduleFindings[:0]
		for _, f := range routed {
			pkg := prog.PackageOf(f.Pos.Filename)
			if pkg == nil {
				continue
			}
			if a.Match != nil && !a.Match(pkg.Path) {
				continue
			}
			perPkg[idxOf[pkg]] = append(perPkg[idxOf[pkg]], f)
		}
	}

	var all []Finding
	for i, pkg := range pkgs {
		byLine := collectAllows(pkg.Fset, pkg.Files)
		applySuppressions(perPkg[i], byLine)
		kept := append(perPkg[i], allowFindings(byLine, ranByPkg[i], known)...)
		all = append(all, kept...)
	}
	sortFindings(all)
	return all
}
