package lint

// DeterministicPackages are the packages whose output feeds the paper's
// tables and must be bit-identical across same-seed runs; maprange
// enforces ordered iteration inside them. World generation, scanning,
// verification, the ACME CA and renewal fleet, the dataset/result-set
// aggregation layer, and the reporting/statistics layers all qualify: a
// single unordered map walk in any of them reorders RNG draws, index
// buckets, order dispatch, or report rows.
var DeterministicPackages = []string{
	"repro/internal/world",
	"repro/internal/scanner",
	"repro/internal/verify",
	"repro/internal/core",
	"repro/internal/acme",
	"repro/internal/acmefleet",
	"repro/internal/dataset",
	"repro/internal/resultset",
	"repro/internal/report",
	"repro/internal/stats",
}

// WallClockPackages are the packages whose business is genuinely the wall
// clock, exempt from walltime as a package rather than line by line:
// simclock implements the Real clock, and tlsprobe scans the actual
// Internet where elapsed wall time is the measurement.
var WallClockPackages = []string{
	"repro/internal/simclock",
	"repro/internal/tlsprobe",
}

// DefaultAnalyzers is the invariant set enforced on this repository — the
// configuration behind `govlint ./...`, the CI lint job, and the
// repo-lints-clean smoke test.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Walltime(WallClockPackages...),
		GlobalRand(),
		MapRange(DeterministicPackages...),
		Exhaustive(),
	}
}
