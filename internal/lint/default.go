package lint

// DeterministicPackages are the packages whose output feeds the paper's
// tables and must be bit-identical across same-seed runs; maprange
// enforces ordered iteration inside them. World generation, scanning,
// verification, the ACME CA and renewal fleet, the dataset/result-set
// aggregation layer, the continuous-observatory loop, and the
// reporting/statistics layers all qualify: a single unordered map walk in
// any of them reorders RNG draws, index buckets, order dispatch, queue
// admissions, or report rows.
var DeterministicPackages = []string{
	"repro/internal/world",
	"repro/internal/scanner",
	"repro/internal/verify",
	"repro/internal/core",
	"repro/internal/acme",
	"repro/internal/acmefleet",
	"repro/internal/dataset",
	"repro/internal/resultset",
	"repro/internal/observatory",
	"repro/internal/report",
	"repro/internal/stats",
	"repro/internal/serve",
	"repro/internal/serve/loadgen",
}

// WallClockPackages are the packages whose business is genuinely the wall
// clock, exempt from walltime as a package rather than line by line:
// simclock implements the Real clock, and tlsprobe scans the actual
// Internet where elapsed wall time is the measurement.
var WallClockPackages = []string{
	"repro/internal/simclock",
	"repro/internal/tlsprobe",
}

// LongRunningPackages are the packages whose goroutines live for a whole
// suite run (the scheduler, fleet dispatch, the dataset pool, the sharded
// builders, the scan worker pools, the observatory loop, the query API
// and its load generator); chanleak polices their spawn sites.
var LongRunningPackages = []string{
	"repro/internal/core",
	"repro/internal/acmefleet",
	"repro/internal/dataset",
	"repro/internal/resultset",
	"repro/internal/scanner",
	"repro/internal/observatory",
	"repro/internal/serve",
	"repro/internal/serve/loadgen",
}

// HotPathFuncs is the declared zero-alloc hot set hotalloc enforces: the
// httpsim wire codecs, the scanner probe loop and zero-copy JSON
// exporter, the cert fingerprint/base64 encoders, and the result-set
// build. Additions here are a reviewed contract — a function joins the
// hot set when a bench gate depends on its allocation behavior.
var HotPathFuncs = []string{
	"repro/internal/httpsim.Read*",
	"repro/internal/httpsim.Write*",
	"repro/internal/httpsim.readPooled",
	"repro/internal/httpsim.readLine",
	"repro/internal/httpsim.readHeaders",
	"repro/internal/httpsim.headerKey",
	"repro/internal/httpsim.internToken",
	"repro/internal/httpsim.atoiBytes",
	"repro/internal/scanner.Scanner.probeHTTP",
	"repro/internal/scanner.Scanner.probeHTTPS",
	"repro/internal/scanner.Append*",
	"repro/internal/scanner.append*",
	"repro/internal/cert.Append*",
	"repro/internal/resultset.build",
	"repro/internal/resultset.Builder.Add",
	"repro/internal/serve.append*",
}

// DefaultAnalyzers is the invariant set enforced on this repository — the
// configuration behind `govlint ./...`, the CI lint job, and the
// repo-lints-clean smoke test.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Walltime(WallClockPackages...),
		GlobalRand(),
		MapRange(DeterministicPackages...),
		Exhaustive(),
		DatasetDecl(DefaultDatasetDeclConfig()),
		GoroutineOwner(),
		HotAlloc(HotPathFuncs...),
		ChanLeak(LongRunningPackages...),
	}
}
