// Package certwatch implements the §7.3.2 spoofing analysis as a working
// detector: given the set of legitimate government hostnames, it flags
// certificate-transparency entries for lookalike domains — ccTLD confusion
// (etagov.sl posing as eta.gov.lk), gov-keyword squats (abcgov.us), and
// small-edit-distance twins — the attacks the paper shows can carry
// perfectly valid free certificates.
package certwatch

import (
	"sort"
	"strings"

	"repro/internal/ctlog"
	"repro/internal/geo"
)

// RuleKind classifies why a domain looks like a government host.
type RuleKind int

// Detection rules.
const (
	// CCTLDConfusion flags hosts whose name collapses a government
	// hostname's dots and swaps the country code — the etagov.sl vs
	// eta.gov.lk case.
	CCTLDConfusion RuleKind = iota
	// GovKeywordSquat flags "<name>gov.<tld>" registrations shadowing
	// "<name>.gov..." hosts (the 85 abcgov.us-style hostnames).
	GovKeywordSquat
	// EditDistance flags names within distance 1 of a government host's
	// registrable name.
	EditDistance
)

var ruleNames = map[RuleKind]string{
	CCTLDConfusion:  "cctld-confusion",
	GovKeywordSquat: "gov-keyword-squat",
	EditDistance:    "edit-distance",
}

// String names the rule.
func (k RuleKind) String() string { return ruleNames[k] }

// Match is one lookalike finding.
type Match struct {
	// Candidate is the suspicious hostname.
	Candidate string
	// Target is the legitimate government hostname being imitated.
	Target string
	// Rule is the detection rule that fired.
	Rule RuleKind
}

// Watcher holds the protected hostname set in matchable form.
type Watcher struct {
	// exact holds the protected hostnames.
	exact map[string]bool
	// collapsed maps dot-stripped-without-cc forms to a protected host,
	// e.g. "etagov" -> "eta.gov.lk".
	collapsed map[string]string
	// govNames maps the label preceding a gov suffix to a protected host,
	// e.g. "eta" -> "eta.gov.lk".
	govNames map[string]string
	// byPrefix buckets protected hostnames by their first two bytes so the
	// edit-distance sweep stays near-linear over CT-scale inputs. Typos
	// that alter the first two characters escape this rule (they are still
	// caught by the other rules when they touch the gov labels).
	byPrefix map[string][]string
	// parents holds the immediate parent domains of protected hosts;
	// wildcard certificates legitimately list them as SANs, so they are
	// never lookalikes.
	parents map[string]bool
}

// NewWatcher indexes the protected government hostnames.
func NewWatcher(govHosts []string) *Watcher {
	w := &Watcher{
		exact:     make(map[string]bool, len(govHosts)),
		collapsed: make(map[string]string),
		govNames:  make(map[string]string),
		byPrefix:  make(map[string][]string),
		parents:   make(map[string]bool),
	}
	for _, h := range govHosts {
		host := strings.ToLower(h)
		w.exact[host] = true
		if len(host) >= 2 {
			p := host[:2]
			w.byPrefix[p] = append(w.byPrefix[p], host)
		}
		if c := collapseGovHost(host); c != "" {
			if _, taken := w.collapsed[c]; !taken {
				w.collapsed[c] = host
			}
		}
		if name := labelBeforeGov(host); name != "" {
			if _, taken := w.govNames[name]; !taken {
				w.govNames[name] = host
			}
		}
		if dot := strings.IndexByte(host, '.'); dot >= 0 {
			w.parents[host[dot+1:]] = true
		}
	}
	return w
}

// Check tests one candidate hostname against the protected set.
func (w *Watcher) Check(candidate string) []Match {
	host := strings.ToLower(strings.TrimSuffix(candidate, "."))
	if host == "" || w.exact[host] || w.parents[host] {
		return nil // the genuine article, or a wildcard parent of one
	}
	var out []Match

	// Rule 1: ccTLD confusion. "etagov.sl" -> label "etagov", tld "sl":
	// does some protected host collapse to "etagov" under a different cc?
	if label, tld, ok := splitLast(host); ok && len(tld) == 2 {
		if target, hit := w.collapsed[label]; hit && !strings.HasSuffix(target, "."+tld) {
			out = append(out, Match{Candidate: host, Target: target, Rule: CCTLDConfusion})
		}
	}

	// Rule 2: gov-keyword squat. "abcgov.us" -> name "abc" + "gov":
	// flag when a protected host exists for the same leading name.
	if label, _, ok := splitLast(host); ok && strings.HasSuffix(label, "gov") && len(label) > 3 {
		name := strings.TrimSuffix(label, "gov")
		name = strings.TrimSuffix(name, "-")
		if target, hit := w.govNames[name]; hit {
			out = append(out, Match{Candidate: host, Target: target, Rule: GovKeywordSquat})
		}
	}

	// Rule 3: typosquats within edit distance 1 of a protected hostname.
	// Candidates are matched against the prefix bucket so scanning a full
	// CT log stays near-linear.
	if len(out) == 0 && len(host) >= 2 {
		for _, protected := range w.byPrefix[host[:2]] {
			if abs(len(protected)-len(host)) > 1 {
				continue
			}
			if levenshteinAtMost1(protected, host) {
				out = append(out, Match{Candidate: host, Target: protected, Rule: EditDistance})
				break
			}
		}
	}
	return out
}

// MatchEntry screens a single CT entry: every DNS name on the
// certificate (wildcards stripped to their base domain, deduplicated) is
// checked against the protected set. This is the per-entry unit of work
// behind ScanLog, exposed so a log tail can screen new issuance as it
// arrives instead of rescanning the whole log.
func (w *Watcher) MatchEntry(e ctlog.Entry) []Match {
	var out []Match
	var seen map[string]bool
	names := e.Cert.Names()
	if len(names) > 1 {
		seen = make(map[string]bool, len(names))
	}
	for _, name := range names {
		name = strings.TrimPrefix(strings.ToLower(name), "*.")
		if seen != nil {
			if seen[name] {
				continue
			}
			seen[name] = true
		}
		out = append(out, w.Check(name)...)
	}
	return out
}

// ScanLog sweeps a CT log for lookalike issuance — the monitoring loop the
// paper recommends registrars run (§8.2). Matches are sorted by candidate.
func (w *Watcher) ScanLog(log *ctlog.Log) []Match {
	var out []Match
	for _, e := range log.Entries() {
		out = append(out, w.MatchEntry(e)...)
	}
	SortMatches(out)
	return out
}

// SortMatches orders matches canonically, by (candidate, rule).
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Candidate != ms[j].Candidate {
			return ms[i].Candidate < ms[j].Candidate
		}
		return ms[i].Rule < ms[j].Rule
	})
}

// collapseGovHost turns "eta.gov.lk" into "etagov" (labels joined, country
// code dropped). Only hostnames ending in a known ccTLD collapse.
func collapseGovHost(host string) string {
	labels := strings.Split(host, ".")
	if len(labels) < 2 {
		return ""
	}
	tld := labels[len(labels)-1]
	if len(tld) != 2 {
		return ""
	}
	if _, ok := geo.ByCode(tld); !ok {
		return ""
	}
	return strings.Join(labels[:len(labels)-1], "")
}

// labelBeforeGov extracts "eta" from "eta.gov.lk" or "abc" from "abc.gov".
func labelBeforeGov(host string) string {
	labels := strings.Split(host, ".")
	for i := 1; i < len(labels); i++ {
		if labels[i] == "gov" || labels[i] == "gouv" || labels[i] == "gob" {
			return labels[i-1]
		}
	}
	return ""
}

// splitLast splits "etagov.sl" into ("etagov", "sl").
func splitLast(host string) (label, tld string, ok bool) {
	i := strings.LastIndexByte(host, '.')
	if i <= 0 || i == len(host)-1 {
		return "", "", false
	}
	rest := host[:i]
	if j := strings.LastIndexByte(rest, '.'); j >= 0 {
		rest = rest[j+1:]
	}
	return rest, host[i+1:], true
}

// levenshteinAtMost1 reports whether a and b differ by at most one edit
// (insert, delete or substitute) without computing the full matrix.
func levenshteinAtMost1(a, b string) bool {
	if a == b {
		return false // identical strings are handled by the exact check
	}
	la, lb := len(a), len(b)
	if abs(la-lb) > 1 {
		return false
	}
	if la > lb {
		a, b = b, a
		la, lb = lb, la
	}
	// a is the shorter (or equal) string.
	i, j, edits := 0, 0, 0
	for i < la && j < lb {
		if a[i] == b[j] {
			i++
			j++
			continue
		}
		edits++
		if edits > 1 {
			return false
		}
		if la == lb {
			i++ // substitution
		}
		j++ // insertion into a / skip in b
	}
	edits += lb - j
	return edits == 1
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
