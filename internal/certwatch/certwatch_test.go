package certwatch

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cert"
	"repro/internal/ctlog"
)

func watcher() *Watcher {
	return NewWatcher([]string{
		"eta.gov.lk",
		"abc.gov",
		"treasury.gov",
		"portal.gov.bd",
		"impots.gouv.fr",
	})
}

func TestPaperCaseEtagovSL(t *testing.T) {
	// §7.3.2: etagov.sl posing as eta.gov.lk.
	w := watcher()
	matches := w.Check("etagov.sl")
	if len(matches) == 0 {
		t.Fatal("etagov.sl not flagged")
	}
	if matches[0].Rule != CCTLDConfusion || matches[0].Target != "eta.gov.lk" {
		t.Errorf("match = %+v", matches[0])
	}
}

func TestPaperCaseAbcgovUS(t *testing.T) {
	// §7.3.2: 85 unique hostnames of the form abcgov.us.
	w := watcher()
	matches := w.Check("abcgov.us")
	found := false
	for _, m := range matches {
		if m.Rule == GovKeywordSquat && m.Target == "abc.gov" {
			found = true
		}
	}
	if !found {
		t.Fatalf("abcgov.us not flagged as keyword squat: %v", matches)
	}
}

func TestGenuineHostNotFlagged(t *testing.T) {
	w := watcher()
	for _, genuine := range []string{"eta.gov.lk", "treasury.gov", "impots.gouv.fr"} {
		if got := w.Check(genuine); len(got) != 0 {
			t.Errorf("genuine host %q flagged: %v", genuine, got)
		}
	}
}

func TestUnrelatedHostNotFlagged(t *testing.T) {
	w := watcher()
	for _, benign := range []string{
		"example.com", "news.bbc.co.uk", "completely-different.sl", "gov.uk",
	} {
		if got := w.Check(benign); len(got) != 0 {
			t.Errorf("benign host %q flagged: %v", benign, got)
		}
	}
}

func TestEditDistanceTyposquat(t *testing.T) {
	w := watcher()
	matches := w.Check("treasurry.gov") // one inserted letter
	found := false
	for _, m := range matches {
		if m.Rule == EditDistance && m.Target == "treasury.gov" {
			found = true
		}
	}
	if !found {
		t.Fatalf("typosquat not flagged: %v", matches)
	}
}

func TestGouvKeyword(t *testing.T) {
	w := watcher()
	matches := w.Check("impotsgov.fr")
	// The collapsed form "impotsgouv" differs, but edit-distance or squat
	// heuristics may fire; what must not happen is a panic or a miss of
	// the exact collapse:
	m2 := w.Check("impotsgouv.sn") // collapsed name under another ccTLD
	if len(m2) == 0 {
		t.Errorf("impotsgouv.sn (cc confusion of impots.gouv.fr) not flagged")
	}
	_ = matches
}

func TestScanLog(t *testing.T) {
	w := watcher()
	r := rand.New(rand.NewSource(1))
	log := ctlog.New("monitor")
	at := time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC)

	add := func(host string) {
		key := cert.NewKey(r, cert.KeyRSA, 2048)
		c := &cert.Certificate{
			Subject:   cert.Name{CommonName: host},
			Issuer:    cert.Name{CommonName: "Free CA"},
			DNSNames:  []string{host},
			NotBefore: at, NotAfter: at.AddDate(0, 3, 0),
			PublicKey: key,
		}
		c.Sign(key.ID)
		log.Append(c, at)
	}
	add("etagov.sl")      // phishing
	add("legit.site.com") // benign
	add("eta.gov.lk")     // the genuine host renewing
	add("treasurygov.us") // keyword squat

	matches := w.ScanLog(log)
	if len(matches) < 2 {
		t.Fatalf("matches = %v", matches)
	}
	seen := map[string]bool{}
	for _, m := range matches {
		seen[m.Candidate] = true
	}
	if !seen["etagov.sl"] || !seen["treasurygov.us"] {
		t.Errorf("expected candidates missing: %v", matches)
	}
	if seen["eta.gov.lk"] || seen["legit.site.com"] {
		t.Errorf("benign entries flagged: %v", matches)
	}
}

func TestLevenshteinAtMost1(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"abc", "abc", false}, // identical: handled elsewhere
		{"abc", "abd", true},  // substitution
		{"abc", "abcd", true}, // insertion
		{"abcd", "abc", true}, // deletion
		{"abc", "abde", false},
		{"abc", "xyz", false},
		{"", "a", true},
		{"", "ab", false},
	}
	for _, tc := range cases {
		if got := levenshteinAtMost1(tc.a, tc.b); got != tc.want {
			t.Errorf("lev1(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPropertyLev1Symmetric(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 || len(b) > 40 {
			return true
		}
		return levenshteinAtMost1(a, b) == levenshteinAtMost1(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySingleEditAlwaysDetected(t *testing.T) {
	f := func(s string, pos uint8, c byte) bool {
		if len(s) == 0 || len(s) > 30 {
			return true
		}
		p := int(pos) % len(s)
		if s[p] == c {
			return true
		}
		b := []byte(s)
		b[p] = c // single-byte substitution
		return levenshteinAtMost1(s, string(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDegenerateInputs(t *testing.T) {
	w := watcher()
	for _, s := range []string{"", ".", "..", "x", "gov", "sl"} {
		w.Check(s) // must not panic
	}
}

func TestMatchEntry(t *testing.T) {
	w := watcher()
	r := rand.New(rand.NewSource(2))
	at := time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC)

	entry := func(names ...string) ctlog.Entry {
		key := cert.NewKey(r, cert.KeyRSA, 2048)
		c := &cert.Certificate{
			Subject:   cert.Name{CommonName: names[0]},
			Issuer:    cert.Name{CommonName: "Free CA"},
			DNSNames:  names,
			NotBefore: at, NotAfter: at.AddDate(0, 3, 0),
			PublicKey: key,
		}
		c.Sign(key.ID)
		return ctlog.Entry{Cert: c, Timestamp: at}
	}

	// A lookalike SAN is flagged (etagov.sl trips both the ccTLD and the
	// keyword-squat rules), wildcard form included.
	got := w.MatchEntry(entry("etagov.sl"))
	if len(got) == 0 || got[0].Rule != CCTLDConfusion || got[0].Target != "eta.gov.lk" {
		t.Fatalf("MatchEntry(etagov.sl) = %v", got)
	}
	if got := w.MatchEntry(entry("*.etagov.sl")); len(got) != 0 {
		// *.etagov.sl strips to etagov.sl's parent-less base; the base name
		// itself still matches.
		t.Logf("wildcard base matches: %v", got)
	}

	// Duplicate SANs (name + wildcard of it) are screened once.
	got = w.MatchEntry(entry("treasurygov.us", "*.treasurygov.us"))
	if len(got) != 1 || got[0].Rule != GovKeywordSquat {
		t.Fatalf("deduped MatchEntry = %v", got)
	}

	// Benign and genuine certificates produce no matches.
	if got := w.MatchEntry(entry("eta.gov.lk")); len(got) != 0 {
		t.Fatalf("genuine renewal flagged: %v", got)
	}
	if got := w.MatchEntry(entry("legit.site.com", "www.legit.site.com")); len(got) != 0 {
		t.Fatalf("benign entry flagged: %v", got)
	}
}

func TestMatchEntryAgreesWithScanLog(t *testing.T) {
	w := watcher()
	r := rand.New(rand.NewSource(3))
	log := ctlog.New("tail")
	at := time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC)
	hosts := []string{
		"etagov.sl", "legit.site.com", "eta.gov.lk",
		"treasurygov.us", "treasurry.gov", "portalgov.bd",
	}
	for _, h := range hosts {
		key := cert.NewKey(r, cert.KeyRSA, 2048)
		c := &cert.Certificate{
			Subject:   cert.Name{CommonName: h},
			Issuer:    cert.Name{CommonName: "Free CA"},
			DNSNames:  []string{h},
			NotBefore: at, NotAfter: at.AddDate(0, 3, 0),
			PublicKey: key,
		}
		c.Sign(key.ID)
		log.Append(c, at)
	}

	// Tailing the log through MatchEntry and sorting must reproduce
	// ScanLog exactly.
	var tailed []Match
	entries, _ := log.TailFrom(0)
	for _, e := range entries {
		tailed = append(tailed, w.MatchEntry(e)...)
	}
	SortMatches(tailed)

	want := w.ScanLog(log)
	if len(tailed) != len(want) {
		t.Fatalf("tailed %d matches, ScanLog %d: %v vs %v", len(tailed), len(want), tailed, want)
	}
	for i := range want {
		if tailed[i] != want[i] {
			t.Fatalf("match %d = %+v, want %+v", i, tailed[i], want[i])
		}
	}
}
