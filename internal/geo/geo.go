// Package geo provides the country database used throughout the study:
// ISO country codes, government domain conventions, population ranks, human
// development index scores and Internet penetration rates. The data drives
// both the synthetic world generation (how many sites a country has, what
// quality profile they follow) and the analysis (Figure 1 choropleth rows,
// Figure 13 population-rank bands).
package geo

import (
	"fmt"
	"sort"
	"strings"
)

// GovConvention identifies the second-level (or top-level) label a country
// uses for official government hostnames, per §4.1.1 of the paper.
type GovConvention string

// The government domain conventions observed in the paper.
const (
	ConvGov        GovConvention = "gov"        // most countries: .gov.cc
	ConvGouv       GovConvention = "gouv"       // francophone: .gouv.cc
	ConvGob        GovConvention = "gob"        // hispanophone: .gob.cc
	ConvGo         GovConvention = "go"         // Kenya, Indonesia, Japan, Korea, Thailand, Uganda
	ConvGub        GovConvention = "gub"        // Uruguay
	ConvGovern     GovConvention = "govern"     // Andorra
	ConvGovernment GovConvention = "government" // rare
	ConvGuv        GovConvention = "guv"        // rare
	ConvGovt       GovConvention = "govt"       // New Zealand
	ConvAdmin      GovConvention = "admin"      // Switzerland
	ConvNone       GovConvention = ""           // no dedicated convention (whitelist only)
)

// Country describes one country or territory in the study.
type Country struct {
	// Name is the common English name.
	Name string
	// Code is the ISO 3166-1 alpha-2 code, which doubles as the ccTLD.
	Code string
	// Convention is the government second-level label, e.g. "gov" for
	// .gov.uk or "gouv" for .gouv.fr.
	Convention GovConvention
	// ExtraGovTLDs lists full government suffixes that do not follow the
	// convention+cc pattern (e.g. the US "gov", "mil", "fed.us").
	ExtraGovTLDs []string
	// Population is an approximate 2020 population.
	Population int64
	// HDIRank is the Human Development Index rank (1 = highest).
	HDIRank int
	// InternetPct is the share of the population online, 0..100.
	InternetPct float64
	// Territory marks dependent territories of other countries; these are
	// excluded from the disclosure campaign (the white bands in Fig 13).
	Territory bool
	// Region is a coarse geographic region label.
	Region string
}

// GovSuffixes returns every hostname suffix that identifies an official
// government site of the country, most specific first.
func (c Country) GovSuffixes() []string {
	out := make([]string, 0, 1+len(c.ExtraGovTLDs))
	if c.Convention != ConvNone {
		out = append(out, string(c.Convention)+"."+c.Code)
	}
	out = append(out, c.ExtraGovTLDs...)
	return out
}

// PopulationRank returns the 1-based rank of the country by population among
// all countries in the database (1 = most populous). Territories are ranked
// too; ties break by code.
func PopulationRank(code string) (int, bool) {
	ranks := populationRanks()
	r, ok := ranks[strings.ToLower(code)]
	return r, ok
}

// ByCode returns the country with the given ISO code.
func ByCode(code string) (Country, bool) {
	c, ok := index[strings.ToLower(code)]
	return c, ok
}

// MustByCode is ByCode for codes known to exist; it panics otherwise.
func MustByCode(code string) Country {
	c, ok := ByCode(code)
	if !ok {
		panic(fmt.Sprintf("geo: unknown country code %q", code))
	}
	return c
}

// All returns every country and territory in the database, sorted by code.
func All() []Country {
	out := make([]Country, len(countries))
	copy(out, countries)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Countries returns only sovereign countries (non-territories), sorted by code.
func Countries() []Country {
	var out []Country
	for _, c := range All() {
		if !c.Territory {
			out = append(out, c)
		}
	}
	return out
}

// Territories returns only dependent territories, sorted by code.
func Territories() []Country {
	var out []Country
	for _, c := range All() {
		if c.Territory {
			out = append(out, c)
		}
	}
	return out
}

var (
	index           map[string]Country
	popRanksOnce    map[string]int
	popRanksOrdered []Country
)

func init() {
	index = make(map[string]Country, len(countries))
	for _, c := range countries {
		if _, dup := index[c.Code]; dup {
			panic("geo: duplicate country code " + c.Code)
		}
		index[c.Code] = c
	}
}

func populationRanks() map[string]int {
	if popRanksOnce != nil {
		return popRanksOnce
	}
	ordered := make([]Country, len(countries))
	copy(ordered, countries)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Population != ordered[j].Population {
			return ordered[i].Population > ordered[j].Population
		}
		return ordered[i].Code < ordered[j].Code
	})
	ranks := make(map[string]int, len(ordered))
	for i, c := range ordered {
		ranks[c.Code] = i + 1
	}
	popRanksOnce = ranks
	popRanksOrdered = ordered
	return ranks
}

// ByPopulation returns all countries ordered by descending population.
func ByPopulation() []Country {
	populationRanks()
	out := make([]Country, len(popRanksOrdered))
	copy(out, popRanksOrdered)
	return out
}
