package geo

import (
	"strings"
	"testing"
)

func TestByCodeKnown(t *testing.T) {
	us, ok := ByCode("us")
	if !ok {
		t.Fatal("ByCode(us) not found")
	}
	if us.Name != "United States" {
		t.Errorf("us name = %q", us.Name)
	}
	if len(us.GovSuffixes()) < 3 {
		t.Errorf("us gov suffixes = %v, want gov/mil/fed.us", us.GovSuffixes())
	}
}

func TestByCodeCaseInsensitive(t *testing.T) {
	a, okA := ByCode("KR")
	b, okB := ByCode("kr")
	if !okA || !okB || a.Name != b.Name {
		t.Fatalf("case-insensitive lookup failed: %v %v", okA, okB)
	}
}

func TestByCodeUnknown(t *testing.T) {
	if _, ok := ByCode("zz"); ok {
		t.Fatal("ByCode(zz) should not exist")
	}
}

func TestMustByCodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByCode(zz) did not panic")
		}
	}()
	MustByCode("zz")
}

func TestGovSuffixConventions(t *testing.T) {
	cases := map[string]string{
		"uk": "gov.uk",
		"fr": "gouv.fr",
		"mx": "gob.mx",
		"kr": "go.kr",
		"nz": "govt.nz",
		"ch": "admin.ch",
		"uy": "gub.uy",
		"ad": "govern.ad",
	}
	for code, want := range cases {
		c := MustByCode(code)
		got := c.GovSuffixes()
		if len(got) == 0 || got[0] != want {
			t.Errorf("%s suffixes = %v, want first %q", code, got, want)
		}
	}
}

func TestNoConventionCountries(t *testing.T) {
	// Germany, Greenland, Gabon, Denmark, Netherlands do not use a standard
	// gov extension per §4.2.3 — they are whitelist-only.
	for _, code := range []string{"de", "gl", "ga", "dk", "nl"} {
		c := MustByCode(code)
		if c.Convention != ConvNone {
			t.Errorf("%s convention = %q, want none", code, c.Convention)
		}
	}
}

func TestAllSortedAndUnique(t *testing.T) {
	all := All()
	if len(all) < 180 {
		t.Fatalf("database has %d entries, want >= 180", len(all))
	}
	seen := map[string]bool{}
	prev := ""
	for _, c := range all {
		if c.Code <= prev && prev != "" {
			t.Errorf("All() not sorted: %q after %q", c.Code, prev)
		}
		if seen[c.Code] {
			t.Errorf("duplicate code %q", c.Code)
		}
		seen[c.Code] = true
		prev = c.Code
	}
}

func TestCountriesExcludeTerritories(t *testing.T) {
	for _, c := range Countries() {
		if c.Territory {
			t.Errorf("Countries() contains territory %q", c.Code)
		}
	}
	if len(Territories()) < 20 {
		t.Errorf("Territories() = %d, want >= 20", len(Territories()))
	}
}

func TestPopulationRank(t *testing.T) {
	cn, ok := PopulationRank("cn")
	if !ok || cn != 1 {
		t.Errorf("China population rank = %d, want 1", cn)
	}
	in, _ := PopulationRank("in")
	if in != 2 {
		t.Errorf("India population rank = %d, want 2", in)
	}
	va, ok := PopulationRank("va")
	if !ok || va < 200 {
		t.Errorf("Vatican population rank = %d, want near the bottom", va)
	}
}

func TestByPopulationOrdering(t *testing.T) {
	ordered := ByPopulation()
	for i := 1; i < len(ordered); i++ {
		if ordered[i].Population > ordered[i-1].Population {
			t.Fatalf("ByPopulation out of order at %d: %s > %s",
				i, ordered[i].Code, ordered[i-1].Code)
		}
	}
}

func TestEveryCountryHasSaneFields(t *testing.T) {
	for _, c := range All() {
		if c.Name == "" || len(c.Code) != 2 {
			t.Errorf("bad identity: %+v", c)
		}
		if c.Population <= 0 {
			t.Errorf("%s population = %d", c.Code, c.Population)
		}
		if c.InternetPct < 0 || c.InternetPct > 100 {
			t.Errorf("%s internet pct = %f", c.Code, c.InternetPct)
		}
		if c.Region == "" {
			t.Errorf("%s missing region", c.Code)
		}
		for _, s := range c.GovSuffixes() {
			if strings.HasPrefix(s, ".") || strings.HasSuffix(s, ".") {
				t.Errorf("%s suffix %q has stray dot", c.Code, s)
			}
		}
	}
}

func TestCaseStudyCountriesMatchPaper(t *testing.T) {
	us := MustByCode("us")
	kr := MustByCode("kr")
	if us.HDIRank != 15 || kr.HDIRank != 22 {
		t.Errorf("HDI ranks: us=%d kr=%d, want 15 and 22 (per §6)", us.HDIRank, kr.HDIRank)
	}
	if us.InternetPct != 90 || kr.InternetPct != 96 {
		t.Errorf("internet adoption: us=%v kr=%v, want 90 and 96", us.InternetPct, kr.InternetPct)
	}
}
