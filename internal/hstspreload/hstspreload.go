// Package hstspreload models the HTTP Strict-Transport-Security preload
// list the paper recommends governments enroll in (§8.2) and that the US
// .gov registry mandated shortly after the disclosures (§7.2.2): a registry
// of preloaded suffixes, eligibility checks against scan results, and an
// impact simulation answering the policy question "which sites break if a
// whole government suffix is preloaded?".
package hstspreload

import (
	"sort"
	"strings"

	"repro/internal/resultset"
	"repro/internal/scanner"
)

// List is a set of preloaded hostnames and suffixes.
type List struct {
	entries map[string]bool
}

// NewList creates an empty preload list.
func NewList() *List {
	return &List{entries: make(map[string]bool)}
}

// Add preloads a hostname or registry suffix (e.g. "gov" preloads every
// .gov site, the 2020 DotGov policy).
func (l *List) Add(entry string) {
	l.entries[strings.ToLower(strings.TrimPrefix(entry, "."))] = true
}

// Len reports the number of entries.
func (l *List) Len() int { return len(l.entries) }

// Covers reports whether the hostname falls under any preloaded entry
// (exact match or suffix, label-aligned).
func (l *List) Covers(hostname string) bool {
	h := strings.ToLower(hostname)
	if l.entries[h] {
		return true
	}
	for i := 0; i < len(h); i++ {
		if h[i] == '.' && l.entries[h[i+1:]] {
			return true
		}
	}
	return false
}

// Eligibility is the result of checking one host against the preload
// submission requirements (hstspreload.org's, simplified to what the scan
// observes): valid https, an http→https redirect, and an HSTS header.
type Eligibility struct {
	Hostname string
	Eligible bool
	// Missing lists the unmet requirements.
	Missing []string
}

// CheckEligibility evaluates a scan result.
func CheckEligibility(r *scanner.Result) Eligibility {
	e := Eligibility{Hostname: r.Hostname}
	if !r.ValidHTTPS() {
		e.Missing = append(e.Missing, "valid https")
	}
	if r.ServesHTTP && !r.RedirectsToHTTPS {
		e.Missing = append(e.Missing, "http-to-https redirect")
	}
	if !r.HSTS {
		e.Missing = append(e.Missing, "strict-transport-security header")
	}
	e.Eligible = len(e.Missing) == 0
	return e
}

// Impact summarizes what preloading a suffix would do to a population: the
// DotGov question of §7.2.2.
type Impact struct {
	Suffix string
	// Covered counts hosts under the suffix.
	Covered int
	// Ready counts covered hosts already serving valid https.
	Ready int
	// WouldBreak counts covered hosts a preload would cut off: browsers
	// would refuse their http-only or invalid-https content.
	WouldBreak int
	// Breakage lists the broken hostnames, sorted.
	Breakage []string
}

// ReadyPct is the share of covered hosts that survive preloading.
func (i Impact) ReadyPct() float64 {
	if i.Covered == 0 {
		return 0
	}
	return 100 * float64(i.Ready) / float64(i.Covered)
}

// SimulateImpact evaluates preloading one suffix over an indexed scan.
func SimulateImpact(suffix string, set *resultset.Set) Impact {
	l := NewList()
	l.Add(suffix)
	imp := Impact{Suffix: suffix}
	for i := 0; i < set.Len(); i++ {
		r := set.At(i)
		if !l.Covers(r.Hostname) {
			continue
		}
		imp.Covered++
		if r.ValidHTTPS() {
			imp.Ready++
		} else if r.Available {
			imp.WouldBreak++
			imp.Breakage = append(imp.Breakage, r.Hostname)
		}
	}
	sort.Strings(imp.Breakage)
	return imp
}

// EligibleHosts filters the set to hosts meeting the submission bar.
func EligibleHosts(set *resultset.Set) []string {
	var out []string
	for i := 0; i < set.Len(); i++ {
		if CheckEligibility(set.At(i)).Eligible {
			out = append(out, set.At(i).Hostname)
		}
	}
	sort.Strings(out)
	return out
}
