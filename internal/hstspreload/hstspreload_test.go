package hstspreload_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/hstspreload"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/world"
)

var (
	testWorld = world.MustBuild(world.TestConfig())
	cached    *resultset.Set
)

func results(t *testing.T) *resultset.Set {
	t.Helper()
	if cached == nil {
		s := scanner.New(testWorld.Net, testWorld.DNS, testWorld.Class,
			scanner.DefaultConfig(testWorld.Stores["apple"], testWorld.ScanTime))
		cached = resultset.New(s.ScanAll(context.Background(), testWorld.GovHosts), resultset.Options{})
	}
	return cached
}

func TestListCoverage(t *testing.T) {
	l := hstspreload.NewList()
	l.Add("gov")
	l.Add(".go.kr")
	cases := map[string]bool{
		"nih.gov":          true,
		"deep.sub.nih.gov": true,
		"minwon.go.kr":     true,
		"nih.gov.br":       false, // .gov.br is not .gov
		"nihgov":           false,
		"example.com":      false,
	}
	for host, want := range cases {
		if got := l.Covers(host); got != want {
			t.Errorf("Covers(%q) = %v, want %v", host, got, want)
		}
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestEligibility(t *testing.T) {
	found := map[bool]bool{}
	set := results(t)
	for i := 0; i < set.Len(); i++ {
		r := set.At(i)
		e := hstspreload.CheckEligibility(r)
		if e.Eligible {
			if !r.ValidHTTPS() || !r.HSTS {
				t.Fatalf("%s eligible without meeting the bar", r.Hostname)
			}
		} else if len(e.Missing) == 0 {
			t.Fatalf("%s ineligible with no missing requirements", r.Hostname)
		}
		found[e.Eligible] = true
	}
	if !found[true] || !found[false] {
		t.Error("world lacks a mix of eligible and ineligible hosts")
	}
}

func TestEligibleHostsSorted(t *testing.T) {
	hosts := hstspreload.EligibleHosts(results(t))
	if len(hosts) == 0 {
		t.Fatal("no eligible hosts")
	}
	for i := 1; i < len(hosts); i++ {
		if hosts[i-1] >= hosts[i] {
			t.Fatal("eligible hosts unsorted")
		}
	}
}

func TestSimulateDotGovPreload(t *testing.T) {
	// The 2020 DotGov decision: preload the whole .gov suffix. The
	// simulation shows how many sites the mandate would cut off.
	imp := hstspreload.SimulateImpact("gov", results(t))
	if imp.Covered == 0 {
		t.Fatal("no .gov hosts covered")
	}
	if imp.Ready+imp.WouldBreak > imp.Covered {
		t.Fatalf("accounting broken: %+v", imp)
	}
	// The US .gov population is ~80% valid, so preloading is mostly safe
	// but visibly breaks the rest.
	if imp.ReadyPct() < 60 || imp.ReadyPct() > 97 {
		t.Errorf("ready pct = %.1f, want ~80", imp.ReadyPct())
	}
	if imp.WouldBreak == 0 {
		t.Error("preload shows no breakage; the long tail should break")
	}
	for _, h := range imp.Breakage {
		if !strings.HasSuffix(h, ".gov") && h != "gov" {
			t.Fatalf("breakage outside suffix: %s", h)
		}
	}
}

func TestSimulateLowReadinessSuffix(t *testing.T) {
	// Preloading a struggling government's suffix breaks most of it —
	// the reason §8.2's recommendation needs the certificate fixes first.
	impCN := hstspreload.SimulateImpact("gov.cn", results(t))
	impGov := hstspreload.SimulateImpact("gov", results(t))
	if impCN.Covered == 0 {
		t.Skip("no gov.cn hosts at this scale")
	}
	if impCN.ReadyPct() >= impGov.ReadyPct() {
		t.Errorf("gov.cn readiness (%.1f%%) should trail .gov (%.1f%%)",
			impCN.ReadyPct(), impGov.ReadyPct())
	}
}
