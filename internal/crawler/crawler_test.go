package crawler

import (
	"context"
	"errors"
	"testing"

	"repro/internal/govfilter"
	"repro/internal/world"
)

var testWorld = world.MustBuild(world.TestConfig())

func worldFetcher() *WebFetcher {
	return &WebFetcher{Dialer: testWorld.Net, Resolver: testWorld.DNS, Vantage: "lab"}
}

// mapFetcher serves a hand-built link graph.
type mapFetcher map[string][]string

func (m mapFetcher) FetchLinks(_ context.Context, h string) ([]string, error) {
	links, ok := m[h]
	if !ok {
		return nil, errors.New("unreachable")
	}
	return links, nil
}

func TestCrawlBFSDepths(t *testing.T) {
	graph := mapFetcher{
		"a.gov.br": {"b.gov.br", "x.example.com"},
		"b.gov.br": {"c.gov.br"},
		"c.gov.br": {"d.gov.br"},
		"d.gov.br": {"e.gov.br"},
	}
	c := New(graph)
	c.MaxDepth = 2
	hosts, stats := c.Crawl(context.Background(), []string{"a.gov.br"})
	// Depth 2 reaches c; d/e stay undiscovered. x.example.com is dropped
	// by the ccTLD filter.
	want := []string{"a.gov.br", "b.gov.br", "c.gov.br"}
	if len(hosts) != len(want) {
		t.Fatalf("hosts = %v, want %v", hosts, want)
	}
	for i := range want {
		if hosts[i] != want[i] {
			t.Fatalf("hosts = %v, want %v", hosts, want)
		}
	}
	if len(stats.Levels) != 3 {
		t.Fatalf("levels = %d", len(stats.Levels))
	}
	if stats.Levels[1].NewUnique != 1 || stats.Levels[2].NewUnique != 1 {
		t.Errorf("per-level new uniques = %+v", stats.Levels)
	}
}

func TestCrawlDedup(t *testing.T) {
	graph := mapFetcher{
		"a.gov.br": {"b.gov.br", "b.gov.br", "a.gov.br"},
		"b.gov.br": {"a.gov.br"},
	}
	c := New(graph)
	hosts, stats := c.Crawl(context.Background(), []string{"a.gov.br", "A.GOV.BR"})
	if len(hosts) != 2 {
		t.Fatalf("hosts = %v", hosts)
	}
	if stats.Levels[0].NewUnique != 1 {
		t.Errorf("seed dedup failed: %+v", stats.Levels[0])
	}
}

func TestCrawlKeepsUSTLDs(t *testing.T) {
	graph := mapFetcher{
		"portal.gov.br": {"nih.gov", "af.mil", "thing.zz", "example.com"},
		"nih.gov":       nil,
		"af.mil":        nil,
	}
	c := New(graph)
	hosts, _ := c.Crawl(context.Background(), []string{"portal.gov.br"})
	has := map[string]bool{}
	for _, h := range hosts {
		has[h] = true
	}
	if !has["nih.gov"] || !has["af.mil"] {
		t.Errorf("US TLD hosts dropped: %v", hosts)
	}
	if has["thing.zz"] || has["example.com"] {
		t.Errorf("invalid hosts kept: %v", hosts)
	}
}

func TestCrawlWorldFromSeeds(t *testing.T) {
	c := New(worldFetcher())
	hosts, stats := c.Crawl(context.Background(), testWorld.SeedHosts)

	// The crawl must expand the seed list substantially (the paper grew
	// 27,794 seeds into 134,812 government hostnames).
	if len(hosts) < len(testWorld.SeedHosts)*2 {
		t.Errorf("crawl grew %d seeds to only %d hosts", len(testWorld.SeedHosts), len(hosts))
	}
	// And recover the overwhelming majority of the worldwide population.
	gov := govfilter.New()
	found := map[string]bool{}
	for _, h := range hosts {
		if gov.IsGov(h) {
			found[h] = true
		}
	}
	missed := 0
	for _, h := range testWorld.GovHosts {
		if !found[h] && gov.IsGov(h) {
			missed++
		}
	}
	if frac := float64(missed) / float64(len(testWorld.GovHosts)); frac > 0.05 {
		t.Errorf("crawl missed %.1f%% of government hosts", frac*100)
	}
	// Growth declines after the middle levels (Figure A.4).
	if len(stats.Levels) < 6 {
		t.Fatalf("levels = %d", len(stats.Levels))
	}
	mid := stats.Levels[3].NewUnique
	last := stats.Levels[len(stats.Levels)-1].NewUnique
	if last >= mid {
		t.Errorf("discovery did not taper: level3=%d last=%d", mid, last)
	}
}

func TestCrawlRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(worldFetcher())
	hosts, _ := c.Crawl(ctx, testWorld.SeedHosts[:10])
	if len(hosts) > 10 {
		t.Errorf("cancelled crawl expanded to %d hosts", len(hosts))
	}
}

func TestWebFetcherFollowsUpgrade(t *testing.T) {
	// A BothRedirect site's links must be retrievable through the
	// redirect-to-https path.
	var target string
	for _, h := range testWorld.GovHosts {
		s := testWorld.Sites[h]
		if s.Serving == world.BothRedirect && s.Injected == world.ClassValid && len(s.Links) > 0 {
			target = h
			break
		}
	}
	if target == "" {
		t.Skip("no valid redirecting site with links")
	}
	links, err := worldFetcher().FetchLinks(context.Background(), target)
	if err != nil {
		t.Fatal(err)
	}
	if len(links) == 0 {
		t.Error("no links retrieved through https upgrade")
	}
}

func TestWebFetcherUnreachable(t *testing.T) {
	if _, err := worldFetcher().FetchLinks(context.Background(), "nope.gov.zz"); err == nil {
		t.Error("fetch of unknown host succeeded")
	}
}
