// Package crawler implements the dataset-expansion crawler of §4.2.2: a
// breadth-first walk starting from the seed hostnames, following page links
// whose hosts carry a valid country-code extension, for up to seven levels
// of depth. Per-level statistics reproduce Figure A.4's growth curve.
package crawler

import (
	"bufio"
	"context"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"repro/internal/govfilter"
	"repro/internal/httpsim"
	"repro/internal/scanner"
	"repro/internal/tlssim"
)

// Fetcher retrieves the outbound link hosts of a page.
type Fetcher interface {
	FetchLinks(ctx context.Context, hostname string) ([]string, error)
}

// LevelStats summarizes one crawl level, matching Figure A.4's series.
type LevelStats struct {
	// Level is the BFS depth (0 = seed list itself).
	Level int
	// Visited is the number of hosts fetched at this level.
	Visited int
	// Discovered is the number of link hosts seen (pre-dedup).
	Discovered int
	// NewUnique is the number of previously unseen hosts with a valid
	// ccTLD added to the frontier.
	NewUnique int
	// NewGov is how many of those match the government filter.
	NewGov int
	// CumulativeUnique is the dataset size after this level.
	CumulativeUnique int
	// GrowthPct is the percentage increase over the previous level.
	GrowthPct float64
}

// Stats is a full crawl trace.
type Stats struct {
	Levels []LevelStats
	// TotalFetched counts pages fetched.
	TotalFetched int
	// TotalRetrieved counts link-host observations before dedup.
	TotalRetrieved int
}

// Crawler walks the link graph.
type Crawler struct {
	Fetch Fetcher
	// MaxDepth bounds the walk; the paper used 7.
	MaxDepth int
	// KeepHost filters frontier candidates; the paper keeps hosts with a
	// valid ccTLD (and the US gov/mil TLDs).
	KeepHost func(string) bool
	// Concurrency bounds parallel fetches per level.
	Concurrency int
}

// New builds a crawler with the paper's settings.
func New(f Fetcher) *Crawler {
	return &Crawler{
		Fetch:       f,
		MaxDepth:    7,
		KeepHost:    govfilter.HasValidCCTLD,
		Concurrency: 64,
	}
}

// Crawl walks from the seeds and returns every unique host retained
// (sorted), along with per-level statistics.
func (c *Crawler) Crawl(ctx context.Context, seeds []string) ([]string, Stats) {
	seen := make(map[string]bool)
	var frontier []string
	for _, s := range seeds {
		h := strings.ToLower(s)
		if !seen[h] {
			seen[h] = true
			frontier = append(frontier, h)
		}
	}
	stats := Stats{}
	gov := govfilter.New()
	prevTotal := len(frontier)

	stats.Levels = append(stats.Levels, LevelStats{
		Level:            0,
		NewUnique:        len(frontier),
		NewGov:           countGov(gov, frontier),
		CumulativeUnique: len(frontier),
	})

	for depth := 1; depth <= c.MaxDepth; depth++ {
		if len(frontier) == 0 || ctx.Err() != nil {
			break
		}
		links := c.fetchLevel(ctx, frontier)
		stats.TotalFetched += len(frontier)
		stats.TotalRetrieved += len(links)

		var next []string
		newGov := 0
		for _, h := range links {
			if seen[h] || !c.KeepHost(h) {
				continue
			}
			seen[h] = true
			next = append(next, h)
			if gov.IsGov(h) {
				newGov++
			}
		}
		cum := prevTotal + len(next)
		growth := 0.0
		if prevTotal > 0 {
			growth = 100 * float64(len(next)) / float64(prevTotal)
		}
		stats.Levels = append(stats.Levels, LevelStats{
			Level:            depth,
			Visited:          len(frontier),
			Discovered:       len(links),
			NewUnique:        len(next),
			NewGov:           newGov,
			CumulativeUnique: cum,
			GrowthPct:        growth,
		})
		prevTotal = cum
		frontier = next
	}

	out := make([]string, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Strings(out)
	return out, stats
}

// fetchLevel fetches every frontier host concurrently and returns the
// observed link hosts (unfiltered, with duplicates).
func (c *Crawler) fetchLevel(ctx context.Context, frontier []string) []string {
	conc := c.Concurrency
	if conc <= 0 {
		conc = 1
	}
	results := make([][]string, len(frontier))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i, h := range frontier {
		sem <- struct{}{}
		// Re-check after the (possibly long) semaphore wait: a context
		// cancelled while we blocked must stop the level here rather than
		// keep issuing fetches as slots free up.
		if ctx.Err() != nil {
			<-sem
			break
		}
		wg.Add(1)
		go func(i int, h string) {
			defer wg.Done()
			defer func() { <-sem }()
			links, err := c.Fetch.FetchLinks(ctx, h)
			if err == nil {
				results[i] = links
			}
		}(i, h)
	}
	wg.Wait()
	var out []string
	for _, links := range results {
		out = append(out, links...)
	}
	return out
}

func countGov(f *govfilter.Filter, hosts []string) int {
	n := 0
	for _, h := range hosts {
		if f.IsGov(h) {
			n++
		}
	}
	return n
}

// WebFetcher fetches pages over the simulated network: plain http first,
// following an upgrade redirect to https when offered. Certificate validity
// is irrelevant to crawling (the crawler, like a browser user, clicks
// "accept the risk and continue").
type WebFetcher struct {
	Dialer   scanner.Dialer
	Resolver scanner.Resolver
	Vantage  string
}

// FetchLinks implements Fetcher.
func (f *WebFetcher) FetchLinks(ctx context.Context, hostname string) ([]string, error) {
	ip, err := scanner.FirstA(f.Resolver, hostname)
	if err != nil || !ip.IsValid() {
		return nil, err
	}

	body, redirected, err := f.getHTTP(ctx, ip, hostname)
	if err == nil && !redirected {
		return linkHosts(body), nil
	}
	// Either port 80 failed or it redirected to https.
	body, err = f.getHTTPS(ctx, ip, hostname)
	if err != nil {
		return nil, err
	}
	return linkHosts(body), nil
}

func (f *WebFetcher) getHTTP(ctx context.Context, ip netip.Addr, hostname string) (body []byte, redirected bool, err error) {
	conn, err := f.Dialer.Dial(ctx, f.Vantage, ip80(ip))
	if err != nil {
		return nil, false, err
	}
	defer conn.Close()
	if err := httpsim.WriteRequest(conn, "GET", hostname, "/"); err != nil {
		return nil, false, err
	}
	resp, err := httpsim.ReadResponse(bufio.NewReader(conn))
	if err != nil {
		return nil, false, err
	}
	if resp.IsRedirect() && strings.HasPrefix(resp.Location(), "https://") {
		return nil, true, nil
	}
	return resp.Body, false, nil
}

func (f *WebFetcher) getHTTPS(ctx context.Context, ip netip.Addr, hostname string) ([]byte, error) {
	conn, err := f.Dialer.Dial(ctx, f.Vantage, ip443(ip))
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	tc, err := tlssim.ClientHandshake(conn, tlssim.DefaultClientConfig(hostname))
	if err != nil {
		return nil, err
	}
	resp, err := httpsim.Get(tc, hostname, "/")
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

func linkHosts(body []byte) []string {
	var out []string
	for _, l := range httpsim.ExtractLinks(body) {
		if h := httpsim.HostOf(l); h != "" {
			out = append(out, h)
		}
	}
	return out
}

func ip80(ip netip.Addr) netip.AddrPort  { return netip.AddrPortFrom(ip, 80) }
func ip443(ip netip.Addr) netip.AddrPort { return netip.AddrPortFrom(ip, 443) }
