package observatory

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/certwatch"
	"repro/internal/longitudinal"
	"repro/internal/resultset"
)

// TickStat is one tick's bookkeeping.
type TickStat struct {
	Tick int
	// Time is the nominal tick time (start + tick·interval) — never a
	// live clock read.
	Time time.Time
	// CTEntries / Events count the tail growth ingested this tick.
	CTEntries int
	Events    int
	// FreshDirty / ChurnDirty count hosts newly enqueued this tick, by
	// priority class.
	FreshDirty int
	ChurnDirty int
	// Scanned is the admitted batch size; Deferred is the queue depth
	// left behind the token bucket.
	Scanned  int
	Deferred int
	// Alerts is the cumulative lookalike-match count so far.
	Alerts int
	// Snapshotted marks ticks that captured a longitudinal snapshot.
	Snapshotted bool
}

// Report is one observatory run's full output.
type Report struct {
	// Corpus is the observed population size.
	Corpus int
	// Ticks holds one entry per tick, in tick order.
	Ticks []TickStat
	// Alerts lists every lookalike match the CT tail surfaced, in
	// ingestion order.
	Alerts []certwatch.Match
	// Trajectory is the adoption curve over the periodic snapshots.
	Trajectory longitudinal.Trajectory
	// FinalCounts is the patched result set's final tally.
	FinalCounts resultset.Counts
}

// Final returns the last tick's stats (zero value for an empty run).
func (r *Report) Final() TickStat {
	if len(r.Ticks) == 0 {
		return TickStat{}
	}
	return r.Ticks[len(r.Ticks)-1]
}

// TotalScanned sums re-scans across the run.
func (r *Report) TotalScanned() int {
	n := 0
	for _, t := range r.Ticks {
		n += t.Scanned
	}
	return n
}

// Bytes serializes the run canonically — the byte string the determinism
// contract is stated over: two same-seed runs at any worker count must
// produce identical output.
func (r *Report) Bytes() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "corpus=%d ticks=%d scanned=%d alerts=%d\n",
		r.Corpus, len(r.Ticks), r.TotalScanned(), len(r.Alerts))
	for _, t := range r.Ticks {
		fmt.Fprintf(&b, "tick=%03d t=%s ct=%d ev=%d fresh=%d churn=%d scanned=%d deferred=%d alerts=%d snap=%v\n",
			t.Tick, t.Time.UTC().Format(time.RFC3339), t.CTEntries, t.Events,
			t.FreshDirty, t.ChurnDirty, t.Scanned, t.Deferred, t.Alerts, t.Snapshotted)
	}
	b.Write(r.Trajectory.Bytes())
	for _, m := range r.Alerts {
		fmt.Fprintf(&b, "alert candidate=%s target=%s rule=%s\n", m.Candidate, m.Target, m.Rule)
	}
	c := r.FinalCounts
	fmt.Fprintf(&b, "final total=%d unavailable=%d http-only=%d https=%d valid=%d invalid=%d\n",
		c.Total, c.Unavailable, c.HTTPOnly, c.HTTPS, c.Valid, c.Invalid)
	return b.Bytes()
}
