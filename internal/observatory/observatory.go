// Package observatory runs the continuous-measurement loop the paper's
// one-shot scans approximate: instead of rescanning the whole government
// corpus on a schedule, it tails the certificate-transparency log and the
// world's change events into a dirty-host stream, prioritizes re-scans
// through a deterministic queue (fresh-certificate hosts first, token-
// bucket rate limiting for the rest of the churn), patches the live
// result set incrementally (resultset.ApplyDelta, cost proportional to
// the delta), and emits periodic longitudinal snapshots — the adoption
// trajectory over virtual months.
//
// Everything the observatory emits is bit-deterministic for a given seed
// and configuration, at any worker count: the acmefleet scheduler's
// ownership discipline. One goroutine owns all state; ticks use nominal
// times (start + i·tick), never live clock reads; re-scans return results
// in admitted order regardless of scanner concurrency; and deltas apply
// on the scheduler goroutine.
package observatory

import (
	"container/heap"
	"context"
	"math/rand"
	"strings"
	"time"

	"repro/internal/certwatch"
	"repro/internal/longitudinal"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/truststore"
	"repro/internal/world"
)

// Config tunes one observatory run. The zero value of every field has a
// usable default; Seed and Start should be set deliberately.
type Config struct {
	// Seed drives the observatory's own churn driver and the scanner's
	// backoff jitter.
	Seed int64
	// Start is the loop start on the virtual timeline (default: the
	// world's scan time).
	Start time.Time
	// Horizon is the simulated observation length (default 60 days).
	Horizon time.Duration
	// Tick is the loop granularity (default 12h).
	Tick time.Duration
	// Workers is the re-scan concurrency per tick (default 16). Output
	// is byte-identical at any value.
	Workers int
	// SnapshotEvery takes a longitudinal snapshot every n ticks
	// (default 4). The final tick always snapshots.
	SnapshotEvery int
	// ChurnPerTick is how many hosts of background churn the observatory
	// itself drives into the world each tick via world.ChurnTick
	// (default 0: the world churns only through external actors such as
	// the ACME fleet or remediation).
	ChurnPerTick int
	// RefillPerTick is the token-bucket refill for non-fresh re-scans
	// (default 32 tokens per tick; each non-fresh re-scan costs one).
	// Fresh-certificate hosts bypass the bucket entirely.
	RefillPerTick int
	// Burst caps accumulated tokens (default 4×RefillPerTick).
	Burst int
	// Store is the trust store re-scans validate against (default: the
	// world's "apple" store, the paper's conservative choice).
	Store *truststore.Store
}

func (c Config) withDefaults(w *world.World) Config {
	if c.Start.IsZero() {
		c.Start = w.ScanTime
	}
	if c.Horizon <= 0 {
		c.Horizon = 60 * 24 * time.Hour
	}
	if c.Tick <= 0 {
		c.Tick = 12 * time.Hour
	}
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4
	}
	if c.RefillPerTick <= 0 {
		c.RefillPerTick = 32
	}
	if c.Burst <= 0 {
		c.Burst = 4 * c.RefillPerTick
	}
	if c.Store == nil {
		c.Store = w.Stores["apple"]
	}
	return c
}

// Observatory is one continuous-measurement loop over one world. All
// fields are owned by the scheduler goroutine running Run; nothing here
// is safe for concurrent use.
type Observatory struct {
	Cfg Config

	w       *world.World
	watcher *certwatch.Watcher
	set     *resultset.Set

	// corpus marks the hostnames in the observed result set; children
	// indexes them by parent domain so wildcard CT entries dirty the
	// hosts they actually cover.
	corpus   map[string]bool
	children map[string][]string

	ctCursor     int
	changeCursor int

	queue  dirtyHeap
	queued map[string]*dirtyHost
	tokens int

	expiry expiryHeap

	churnRand *rand.Rand
	scanCfg   scanner.Config

	alerts []certwatch.Match
	snaps  []longitudinal.Snapshot
}

// dirtyHost is one queued re-scan candidate.
type dirtyHost struct {
	hostname string
	// fresh marks hosts dirtied by fresh certificate issuance (a CT tail
	// entry or a rotation event); they are re-scanned ahead of all other
	// churn and bypass the token bucket.
	fresh bool
	// since is the virtual time the host was first dirtied.
	since time.Time
	// index is the heap position, maintained for heap.Fix upgrades.
	index int
}

// New assembles an observatory over a world and its current indexed scan.
// The CT and change-log cursors start at the present — the loop observes
// growth, not the backlog (the one-shot experiments already cover that).
func New(w *world.World, set *resultset.Set, cfg Config) *Observatory {
	cfg = cfg.withDefaults(w)
	o := &Observatory{
		Cfg:       cfg,
		w:         w,
		watcher:   certwatch.NewWatcher(w.GovHosts),
		set:       set,
		corpus:    make(map[string]bool, set.Len()),
		children:  make(map[string][]string),
		queued:    make(map[string]*dirtyHost),
		tokens:    cfg.Burst,
		churnRand: rand.New(rand.NewSource(cfg.Seed)),
		scanCfg:   scanner.DefaultConfig(cfg.Store, cfg.Start),
	}
	o.scanCfg.Concurrency = cfg.Workers
	o.scanCfg.Seed = cfg.Seed
	_, o.ctCursor = w.CT.TailFrom(1 << 62)
	_, o.changeCursor = w.ChangeTail(1 << 62)
	for i := 0; i < set.Len(); i++ {
		r := set.At(i)
		host := r.Hostname
		o.corpus[host] = true
		if dot := strings.IndexByte(host, '.'); dot >= 0 {
			parent := host[dot+1:]
			o.children[parent] = append(o.children[parent], host)
		}
		if len(r.Chain) > 0 && r.Chain[0].NotAfter.After(cfg.Start) {
			heap.Push(&o.expiry, expiryEntry{at: r.Chain[0].NotAfter, hostname: host})
		}
	}
	return o
}

// Set returns the current patched result set (latest generation).
func (o *Observatory) Set() *resultset.Set { return o.set }

// Run executes the loop: one scheduler pass per tick until the horizon.
// Returns the run's report. Respects ctx cancellation at tick
// boundaries.
func (o *Observatory) Run(ctx context.Context) (*Report, error) {
	rep := &Report{Corpus: o.set.Len()}
	ticks := int(o.Cfg.Horizon / o.Cfg.Tick)
	for i := 0; i <= ticks && ctx.Err() == nil; i++ {
		// Nominal tick time: never a live clock read, so the report is
		// independent of in-tick latency bookkeeping.
		now := o.Cfg.Start.Add(time.Duration(i) * o.Cfg.Tick)
		o.w.Clock.SetTime(now)

		if o.Cfg.ChurnPerTick > 0 {
			o.w.ChurnTick(o.churnRand, now, o.Cfg.ChurnPerTick)
		}

		stat := TickStat{Tick: i, Time: now}
		o.ingest(now, &stat)

		batch := o.admit(now)
		stat.Scanned = len(batch)
		stat.Deferred = o.queue.Len()

		if len(batch) > 0 {
			results := o.rescan(ctx, batch, now)
			next, err := o.set.ApplyDelta(results)
			if err != nil {
				return rep, err
			}
			o.set = next
			// Re-arm expiry tracking from the fresh rows.
			for k := range results {
				r := &results[k]
				if len(r.Chain) > 0 && r.Chain[0].NotAfter.After(now) {
					heap.Push(&o.expiry, expiryEntry{at: r.Chain[0].NotAfter, hostname: r.Hostname})
				}
			}
		}

		if i%o.Cfg.SnapshotEvery == 0 || i == ticks {
			o.snaps = append(o.snaps, longitudinal.Capture(now, o.set))
			stat.Snapshotted = true
		}
		stat.Alerts = len(o.alerts)
		rep.Ticks = append(rep.Ticks, stat)
	}
	rep.Alerts = append([]certwatch.Match(nil), o.alerts...)
	rep.Trajectory = longitudinal.Track(o.snaps)
	rep.FinalCounts = o.set.Counts()
	return rep, nil
}

// ingest advances both tails and the expiry heap, enqueueing dirty
// hosts. Runs on the scheduler goroutine.
func (o *Observatory) ingest(now time.Time, stat *TickStat) {
	// CT tail: every new entry is screened for lookalike issuance, and
	// entries covering corpus hosts dirty them at fresh priority.
	entries, ctCursor := o.w.CT.TailFrom(o.ctCursor)
	o.ctCursor = ctCursor
	stat.CTEntries = len(entries)
	for _, e := range entries {
		o.alerts = append(o.alerts, o.watcher.MatchEntry(e)...)
		for _, name := range e.Cert.Names() {
			name = strings.ToLower(name)
			if rest, ok := strings.CutPrefix(name, "*."); ok {
				// A wildcard covers its parent and the parent's direct
				// children — exactly the hosts such a chain can serve.
				if o.corpus[rest] {
					o.dirty(rest, true, now, stat)
				}
				for _, h := range o.children[rest] {
					o.dirty(h, true, now, stat)
				}
				continue
			}
			if o.corpus[name] {
				o.dirty(name, true, now, stat)
			}
		}
	}

	// World change tail: rotations and fixes carry fresh certificates;
	// everything else is ordinary churn behind the token bucket.
	events, changeCursor := o.w.ChangeTail(o.changeCursor)
	o.changeCursor = changeCursor
	stat.Events = len(events)
	for _, ev := range events {
		if !o.corpus[ev.Hostname] {
			continue
		}
		fresh := ev.Kind == world.CertRotated || ev.Kind == world.SiteFixed
		o.dirty(ev.Hostname, fresh, now, stat)
	}

	// Expiry: certificates aging out flip hosts invalid with no event;
	// the heap built from the corpus chains surfaces them. Stale entries
	// (the host re-scanned onto a newer chain since) are dropped against
	// the live set.
	for o.expiry.Len() > 0 && !o.expiry[0].at.After(now) {
		e := heap.Pop(&o.expiry).(expiryEntry)
		r, ok := o.set.Lookup(e.hostname)
		if !ok || len(r.Chain) == 0 || r.Chain[0].NotAfter.After(now) {
			continue
		}
		o.dirty(e.hostname, false, now, stat)
	}
}

// dirty enqueues one host, upgrading an already-queued entry to fresh
// priority when warranted. Re-dirtying at the same class is a no-op.
func (o *Observatory) dirty(hostname string, fresh bool, now time.Time, stat *TickStat) {
	if h, ok := o.queued[hostname]; ok {
		if fresh && !h.fresh {
			h.fresh = true
			heap.Fix(&o.queue, h.index)
		}
		return
	}
	h := &dirtyHost{hostname: hostname, fresh: fresh, since: now}
	o.queued[hostname] = h
	heap.Push(&o.queue, h)
	if fresh {
		stat.FreshDirty++
	} else {
		stat.ChurnDirty++
	}
}

// admit pops this tick's re-scan batch: every fresh host, then non-fresh
// churn up to the token bucket. Pop order — (fresh, since, hostname) —
// is the batch order, and therefore the delta's result order.
func (o *Observatory) admit(now time.Time) []string {
	o.tokens += o.Cfg.RefillPerTick
	if o.tokens > o.Cfg.Burst {
		o.tokens = o.Cfg.Burst
	}
	var batch []string
	for o.queue.Len() > 0 {
		top := o.queue[0]
		if !top.fresh {
			if o.tokens == 0 {
				break
			}
			o.tokens--
		}
		heap.Pop(&o.queue)
		delete(o.queued, top.hostname)
		batch = append(batch, top.hostname)
	}
	return batch
}

// rescan probes the batch at the nominal tick time. The scanner returns
// results in input order at any concurrency, so the delta is
// deterministic at any worker count.
func (o *Observatory) rescan(ctx context.Context, batch []string, now time.Time) []scanner.Result {
	cfg := o.scanCfg
	cfg.Now = now
	cfg.Clock = o.w.Clock
	s := scanner.New(o.w.Net, o.w.DNS, o.w.Class, cfg)
	return s.ScanAll(ctx, batch)
}

// dirtyHeap orders hosts by (fresh first, since, hostname): the priority
// re-scan queue.
type dirtyHeap []*dirtyHost

func (q dirtyHeap) Len() int { return len(q) }
func (q dirtyHeap) Less(i, j int) bool {
	if q[i].fresh != q[j].fresh {
		return q[i].fresh
	}
	if !q[i].since.Equal(q[j].since) {
		return q[i].since.Before(q[j].since)
	}
	return q[i].hostname < q[j].hostname
}
func (q dirtyHeap) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *dirtyHeap) Push(x any) {
	h := x.(*dirtyHost)
	h.index = len(*q)
	*q = append(*q, h)
}
func (q *dirtyHeap) Pop() any {
	old := *q
	n := len(old)
	h := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return h
}

// expiryEntry is one tracked certificate expiry.
type expiryEntry struct {
	at       time.Time
	hostname string
}

// expiryHeap orders entries by (expiry, hostname).
type expiryHeap []expiryEntry

func (q expiryHeap) Len() int { return len(q) }
func (q expiryHeap) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].hostname < q[j].hostname
}
func (q expiryHeap) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *expiryHeap) Push(x any)   { *q = append(*q, x.(expiryEntry)) }
func (q *expiryHeap) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
