package observatory_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/observatory"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/world"
)

const obsRankBuckets = 50

func obsOptions(w *world.World) resultset.Options {
	rankOf := func(h string) (int, bool) {
		for _, rh := range w.TopLists.TrancoGov {
			if rh.Host == h {
				return rh.Rank, true
			}
		}
		return 0, false
	}
	return resultset.Options{
		CountryOf:   w.CountryOf,
		RankOf:      rankOf,
		RankBuckets: obsRankBuckets,
		RankMax:     w.TopLists.Max,
	}
}

// runObservatory builds a private world, takes the baseline scan, and
// runs one churn-driven observatory loop at the given worker count.
func runObservatory(t *testing.T, workers int) (*observatory.Report, *observatory.Observatory, *world.World) {
	t.Helper()
	w := world.MustBuild(world.TestConfig())
	s := scanner.New(w.Net, w.DNS, w.Class, scanner.DefaultConfig(w.Stores["apple"], w.ScanTime))
	raw := s.ScanAll(context.Background(), w.GovHosts)
	base := resultset.New(raw, obsOptions(w))

	o := observatory.New(w, base, observatory.Config{
		Seed:          1234,
		Tick:          6 * time.Hour,
		Horizon:       60 * time.Hour, // 10 ticks + tick 0
		Workers:       workers,
		SnapshotEvery: 3,
		ChurnPerTick:  6,
		RefillPerTick: 4,
		Burst:         8,
	})
	rep, err := o.Run(context.Background())
	if err != nil {
		t.Fatalf("observatory run: %v", err)
	}
	return rep, o, w
}

// TestObservatoryDeterministicAcrossWorkers is the acceptance check: two
// same-seed runs at different worker counts must produce byte-identical
// report streams — the acmefleet determinism contract applied to the
// observatory loop.
func TestObservatoryDeterministicAcrossWorkers(t *testing.T) {
	rep1, _, _ := runObservatory(t, 1)
	rep16, _, _ := runObservatory(t, 16)

	b1, b16 := rep1.Bytes(), rep16.Bytes()
	if !bytes.Equal(b1, b16) {
		t.Fatalf("report streams diverge across worker counts:\n--- workers=1 ---\n%s\n--- workers=16 ---\n%s", b1, b16)
	}
	if rep1.TotalScanned() == 0 {
		t.Fatal("observatory re-scanned nothing; churn did not propagate")
	}
}

func TestObservatoryLoopShape(t *testing.T) {
	rep, o, w := runObservatory(t, 8)

	if got, want := len(rep.Ticks), 11; got != want {
		t.Fatalf("ticks = %d, want %d", got, want)
	}
	// Snapshots at ticks 0,3,6,9 plus the forced final tick 10.
	if got, want := len(rep.Trajectory.Points), 5; got != want {
		t.Fatalf("trajectory points = %d, want %d", got, want)
	}
	for i, stat := range rep.Ticks {
		if stat.Tick != i {
			t.Fatalf("tick %d numbered %d", i, stat.Tick)
		}
		want := o.Cfg.Start.Add(time.Duration(i) * o.Cfg.Tick)
		if !stat.Time.Equal(want) {
			t.Fatalf("tick %d at %v, want nominal %v", i, stat.Time, want)
		}
	}

	// The population is fixed: deltas patch rows, never grow the corpus.
	if got := o.Set().Len(); got != rep.Corpus || got != len(w.GovHosts) {
		t.Fatalf("set len = %d, corpus = %d, govhosts = %d", got, rep.Corpus, len(w.GovHosts))
	}
	if c := rep.FinalCounts; c.Total != rep.Corpus {
		t.Fatalf("final counts total = %d, corpus = %d", c.Total, rep.Corpus)
	}

	// Churn must have dirtied hosts through both tails, and every
	// rotation-dirtied host re-scans at fresh priority.
	var fresh, churn, ct, ev int
	for _, stat := range rep.Ticks {
		fresh += stat.FreshDirty
		churn += stat.ChurnDirty
		ct += stat.CTEntries
		ev += stat.Events
	}
	if fresh == 0 {
		t.Fatal("no fresh-certificate hosts dirtied; CT tail not flowing")
	}
	if ct == 0 || ev == 0 {
		t.Fatalf("tails stalled: ct=%d events=%d", ct, ev)
	}

	// The patched set must reflect the world's current serving state for
	// every host the loop re-scanned (spot-check via ground truth: a
	// removed or flipped host cannot still carry its baseline category).
	if rep.TotalScanned() < fresh {
		t.Fatalf("scanned %d < fresh %d: fresh hosts must never be deferred", rep.TotalScanned(), fresh)
	}
}

// TestObservatoryDeltaMatchesGroundTruth re-scans the full corpus at the
// final tick time and checks the patched set agrees row-for-row on every
// host whose final-time scan matches its last observatory scan — in
// particular validity and availability for rotated hosts.
func TestObservatoryDeltaMatchesGroundTruth(t *testing.T) {
	rep, o, w := runObservatory(t, 4)
	_ = rep

	final := o.Cfg.Start.Add(o.Cfg.Horizon)
	s := scanner.New(w.Net, w.DNS, w.Class, scanner.DefaultConfig(w.Stores["apple"], final))
	truth := s.ScanAll(context.Background(), w.GovHosts)

	// Hosts the observatory scanned at earlier ticks can differ from the
	// final-time truth only through time passage (expiry). Availability
	// and scheme flips, though, are instant world state — they must
	// agree for any host the loop caught.
	mismatched := 0
	for _, tr := range truth {
		got, ok := o.Set().Lookup(tr.Hostname)
		if !ok {
			t.Fatalf("host %q missing from patched set", tr.Hostname)
		}
		if got.Available != tr.Available || got.ServesHTTP != tr.ServesHTTP {
			mismatched++
		}
	}
	// The token bucket legitimately defers churn past the horizon, so a
	// small tail of stale rows is expected — but the overwhelming bulk
	// of the corpus must be current.
	if limit := len(truth) / 20; mismatched > limit {
		t.Fatalf("%d of %d hosts stale in patched set (limit %d)", mismatched, len(truth), limit)
	}
}
