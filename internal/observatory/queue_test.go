package observatory

import (
	"container/heap"
	"testing"
	"time"
)

var qt0 = time.Date(2020, 4, 26, 0, 0, 0, 0, time.UTC)

func newQueueOnly(refill, burst int) *Observatory {
	return &Observatory{
		Cfg:    Config{RefillPerTick: refill, Burst: burst},
		queued: make(map[string]*dirtyHost),
		tokens: burst,
	}
}

func TestQueuePriorityOrder(t *testing.T) {
	o := newQueueOnly(100, 100)
	var stat TickStat
	o.dirty("churn-b.gov.xx", false, qt0, &stat)
	o.dirty("churn-a.gov.xx", false, qt0, &stat)
	o.dirty("fresh-z.gov.xx", true, qt0.Add(time.Hour), &stat)
	o.dirty("fresh-a.gov.xx", true, qt0.Add(time.Hour), &stat)
	o.dirty("early-churn.gov.xx", false, qt0.Add(-time.Hour), &stat)

	got := o.admit(qt0)
	want := []string{
		// Fresh first (same since → hostname order), then churn by
		// (since, hostname).
		"fresh-a.gov.xx", "fresh-z.gov.xx",
		"early-churn.gov.xx", "churn-a.gov.xx", "churn-b.gov.xx",
	}
	if len(got) != len(want) {
		t.Fatalf("admitted %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("admitted[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
	if stat.FreshDirty != 2 || stat.ChurnDirty != 3 {
		t.Fatalf("stat = %+v", stat)
	}
}

func TestQueueTokenBucketLimitsChurnOnly(t *testing.T) {
	o := newQueueOnly(1, 2)
	o.tokens = 0
	var stat TickStat
	for _, h := range []string{"c1.gov.xx", "c2.gov.xx", "c3.gov.xx", "c4.gov.xx"} {
		o.dirty(h, false, qt0, &stat)
	}
	for _, h := range []string{"f1.gov.xx", "f2.gov.xx", "f3.gov.xx"} {
		o.dirty(h, true, qt0, &stat)
	}

	// Refill of 1: every fresh host admitted, exactly one churn host.
	got := o.admit(qt0)
	if len(got) != 4 {
		t.Fatalf("admitted %v, want 3 fresh + 1 churn", got)
	}
	for i, h := range []string{"f1.gov.xx", "f2.gov.xx", "f3.gov.xx", "c1.gov.xx"} {
		if got[i] != h {
			t.Fatalf("admitted[%d] = %q, want %q", i, got[i], h)
		}
	}
	if o.queue.Len() != 3 {
		t.Fatalf("queue depth = %d, want 3 deferred churn hosts", o.queue.Len())
	}

	// Next tick drains one more; the bucket never exceeds Burst.
	if got := o.admit(qt0.Add(time.Hour)); len(got) != 1 || got[0] != "c2.gov.xx" {
		t.Fatalf("second admit = %v", got)
	}
	o.queue = nil
	for i := 0; i < 5; i++ {
		o.admit(qt0.Add(time.Duration(2+i) * time.Hour))
	}
	if o.tokens != 2 {
		t.Fatalf("tokens = %d, want clamped at burst 2", o.tokens)
	}
}

func TestQueueDedupAndUpgrade(t *testing.T) {
	o := newQueueOnly(0, 1)
	o.tokens = 0
	var stat TickStat
	o.dirty("host.gov.xx", false, qt0, &stat)
	o.dirty("host.gov.xx", false, qt0.Add(time.Hour), &stat) // duplicate: no-op
	if o.queue.Len() != 1 || stat.ChurnDirty != 1 {
		t.Fatalf("queue = %d entries, stat = %+v", o.queue.Len(), stat)
	}

	// Upgrade to fresh re-prioritizes without duplicating, and the host
	// now bypasses the empty token bucket.
	o.dirty("host.gov.xx", true, qt0.Add(2*time.Hour), &stat)
	if o.queue.Len() != 1 {
		t.Fatalf("queue = %d entries after upgrade", o.queue.Len())
	}
	got := o.admit(qt0)
	if len(got) != 1 || got[0] != "host.gov.xx" {
		t.Fatalf("admit after upgrade = %v", got)
	}
}

func TestExpiryHeapOrder(t *testing.T) {
	var q expiryHeap
	heap.Push(&q, expiryEntry{at: qt0.Add(2 * time.Hour), hostname: "b.gov.xx"})
	heap.Push(&q, expiryEntry{at: qt0, hostname: "z.gov.xx"})
	heap.Push(&q, expiryEntry{at: qt0, hostname: "a.gov.xx"})
	heap.Push(&q, expiryEntry{at: qt0.Add(time.Hour), hostname: "m.gov.xx"})

	var got []string
	for q.Len() > 0 {
		got = append(got, heap.Pop(&q).(expiryEntry).hostname)
	}
	want := []string{"a.gov.xx", "z.gov.xx", "m.gov.xx", "b.gov.xx"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}
