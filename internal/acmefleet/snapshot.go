package acmefleet

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/recommend"
)

// Snapshot is the fleet's state at the end of one tick. All counters are
// cumulative except the four state tallies, which partition the enrolled
// population at that instant.
type Snapshot struct {
	Tick int
	// Time is the nominal tick time (start + tick·interval) — never a
	// live clock read.
	Time time.Time
	// State tallies: Enrolled + Renewed + Parked + Denied = population.
	Enrolled int
	Renewed  int
	Parked   int
	Denied   int
	// Attempts counts order attempts so far; Renewals successful ones.
	Attempts int
	Renewals int
	// Errors counts failures so far, indexed by ErrClass.
	Errors [NumErrClasses]int
}

// snapshot tallies fleet state by walking the fixed, hostname-sorted host
// list.
func (f *Fleet) snapshot(tick int, now time.Time) Snapshot {
	s := Snapshot{Tick: tick, Time: now, Errors: f.errTotals}
	for _, h := range f.hosts {
		switch h.state {
		case FleetEnrolled:
			s.Enrolled++
		case FleetRenewed:
			s.Renewed++
		case FleetParked:
			s.Parked++
		case FleetDenied:
			s.Denied++
		}
		s.Attempts += h.attempts
		s.Renewals += h.renewals
	}
	return s
}

// appendTo writes the snapshot's canonical one-line form.
func (s Snapshot) appendTo(b *bytes.Buffer) {
	fmt.Fprintf(b, "tick=%03d t=%s enrolled=%d renewed=%d parked=%d denied=%d attempts=%d renewals=%d errs=",
		s.Tick, s.Time.UTC().Format(time.RFC3339), s.Enrolled, s.Renewed, s.Parked, s.Denied,
		s.Attempts, s.Renewals)
	for c := ErrClass(1); c < NumErrClasses; c++ {
		if c > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, "%s:%d", c, s.Errors[c])
	}
	b.WriteByte('\n')
}

// HostStatus is one host's final campaign outcome.
type HostStatus struct {
	Hostname string
	Reason   recommend.Rule
	State    State
	Class    ErrClass
	Attempts int
	Renewals int
	Probes   int
	// Terminal marks hosts the scheduler will never touch again
	// (denied, or parked with probation exhausted).
	Terminal bool
}

// Report is one campaign's full output.
type Report struct {
	// Enrolled is the campaign population size.
	Enrolled int
	// Snapshots holds one entry per tick, in tick order.
	Snapshots []Snapshot
	// Hosts holds final per-host outcomes, sorted by hostname.
	Hosts []HostStatus
}

// Final returns the last snapshot (zero value for an empty run).
func (r *Report) Final() Snapshot {
	if len(r.Snapshots) == 0 {
		return Snapshot{}
	}
	return r.Snapshots[len(r.Snapshots)-1]
}

// ChangedHosts lists hosts whose serving state the fleet changed (at
// least one certificate rotation) — the partial-invalidation set for
// cached scan datasets.
func (r *Report) ChangedHosts() []string {
	var out []string
	for _, h := range r.Hosts {
		if h.Renewals > 0 {
			out = append(out, h.Hostname)
		}
	}
	return out
}

// Converged reports whether every enrolled host reached a classified
// destination: renewed, denied, or parked with a recorded error class —
// nobody still in the initial enrolled state.
func (r *Report) Converged() bool {
	for _, h := range r.Hosts {
		if h.State == FleetEnrolled {
			return false
		}
	}
	return true
}

// Bytes serializes the snapshot stream canonically — the byte string the
// determinism contract is stated over: two same-seed runs at any worker
// count must produce identical output.
func (r *Report) Bytes() []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "enrolled=%d ticks=%d\n", r.Enrolled, len(r.Snapshots))
	for _, s := range r.Snapshots {
		s.appendTo(&b)
	}
	for _, h := range r.Hosts {
		fmt.Fprintf(&b, "host=%s reason=%s state=%s class=%s attempts=%d renewals=%d probes=%d terminal=%v\n",
			h.Hostname, h.Reason, h.State, h.Class, h.Attempts, h.Renewals, h.Probes, h.Terminal)
	}
	return b.Bytes()
}
