// Package acmefleet closes the paper's §8.1 remediation loop at scale: a
// long-running renewal fleet that enrolls misconfigured government hosts
// from a scan, drives http-01 orders through the simulated ACME CA on the
// virtual clock, and rotates freshly issued certificates into the serving
// world with zero downtime — the automated alternative to the manual
// disclosure campaign of §7.2, hardened the way production ACME clients
// are (acmetool-style renewal queue, deterministic backoff, rate-limit
// aware rescheduling, CAA-denial terminal classification, failure budget
// with parked/probation circuit breaking).
//
// Everything the fleet emits is bit-deterministic for a given seed and
// configuration, at any worker count: attempts are admitted in due order,
// outcomes are applied in admitted order behind a per-tick barrier,
// issuance time is the fleet's own manual clock (frozen within a tick),
// and certificate serials derive from hostname and instant rather than a
// shared counter. Two same-seed runs produce byte-identical snapshot
// streams.
package acmefleet

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"
	"sync"
	"time"

	"repro/internal/acme"
	"repro/internal/cert"
	"repro/internal/recommend"
	"repro/internal/resultset"
	"repro/internal/simclock"
	"repro/internal/world"
)

// State is a host's position in the fleet lifecycle.
type State int

// Fleet lifecycle states.
const (
	// FleetEnrolled hosts are scheduled but have not yet renewed.
	FleetEnrolled State = iota
	// FleetRenewed hosts hold a fleet-issued certificate and are
	// scheduled for their next renewal at expiry minus the window.
	FleetRenewed
	// FleetParked hosts exhausted their failure budget; the breaker is
	// open, with scheduled probation probes until those run out too.
	FleetParked
	// FleetDenied hosts hit a terminal policy refusal (CAA, key reuse)
	// that no retry can fix.
	FleetDenied
)

// String names the state.
func (s State) String() string {
	switch s {
	case FleetEnrolled:
		return "enrolled"
	case FleetRenewed:
		return "renewed"
	case FleetParked:
		return "parked"
	case FleetDenied:
		return "denied"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// ErrClass buckets order failures for the error-decay analysis. The order
// is fixed — snapshots index histograms by it.
type ErrClass int

// Error classes, coarse on purpose: the decay analysis needs stable
// buckets, not full diagnostics.
const (
	// ErrNone marks success.
	ErrNone ErrClass = iota
	// ErrNetwork covers transport failures the client saw directly:
	// refused/reset/timed-out dials, mid-stream resets, truncated or
	// unparseable responses.
	ErrNetwork
	// ErrChallenge covers http-01 validation failures reported by the CA
	// (including network faults between the VA and the host — the client
	// cannot tell those apart, and neither can a real operator).
	ErrChallenge
	// ErrRateLimited covers 429s that slipped past client-side pacing.
	ErrRateLimited
	// ErrCAA is the terminal CAA-refusal class.
	ErrCAA
	// ErrKeyReuse is the terminal §8.1 policy-refusal class.
	ErrKeyReuse
	// ErrOther is everything else (unknown order, not ready, ...).
	ErrOther

	// NumErrClasses sizes histograms.
	NumErrClasses
)

// String names the class.
func (c ErrClass) String() string {
	switch c {
	case ErrNone:
		return "none"
	case ErrNetwork:
		return "network"
	case ErrChallenge:
		return "challenge"
	case ErrRateLimited:
		return "rate-limited"
	case ErrCAA:
		return "caa-denied"
	case ErrKeyReuse:
		return "key-reuse"
	case ErrOther:
		return "other"
	default:
		return fmt.Sprintf("ErrClass(%d)", int(c))
	}
}

// Classify buckets an order error. The acme package's typed problem
// errors keep their sentinel identity across the HTTP API, so this works
// identically for local and wire failures.
func Classify(err error) ErrClass {
	switch {
	case err == nil:
		return ErrNone
	case errors.Is(err, acme.ErrCAARefused):
		return ErrCAA
	case errors.Is(err, acme.ErrKeyReuse):
		return ErrKeyReuse
	case errors.Is(err, acme.ErrRateLimited):
		return ErrRateLimited
	case errors.Is(err, acme.ErrChallenge):
		return ErrChallenge
	case errors.Is(err, acme.ErrUnknownOrder), errors.Is(err, acme.ErrOrderNotReady):
		return ErrOther
	}
	return ErrNetwork
}

// Terminal reports whether the class never clears with retries.
func (c ErrClass) Terminal() bool { return c == ErrCAA || c == ErrKeyReuse }

// Config tunes one campaign. The zero value of every field has a usable
// default; Seed and Start should be set deliberately.
type Config struct {
	// Seed drives backoff jitter and per-host key derivation.
	Seed int64
	// Start is the campaign start on the virtual timeline (default: the
	// world's scan time when constructed via New).
	Start time.Time
	// Horizon is the simulated campaign length (default 120 days).
	Horizon time.Duration
	// Tick is the scheduler granularity (default 24h).
	Tick time.Duration
	// RenewWindow is how long before expiry a renewal comes due
	// (default 30 days, matching common ACME client defaults for 90-day
	// certificates).
	RenewWindow time.Duration
	// Workers is the order-dispatch concurrency per tick (default 4).
	// Output is byte-identical at any value.
	Workers int
	// BackoffBase/BackoffMax shape the retry schedule after transient
	// failures: exponential doubling with deterministic jitter, the
	// scanner's shape on the fleet's timescale (defaults 6h, 4 days).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// FailureBudget is how many consecutive transient failures park a
	// host (default 4).
	FailureBudget int
	// Probation is the parked cooldown before a probe attempt
	// (default 10 days).
	Probation time.Duration
	// MaxProbes bounds probation probes; when they run out the host is
	// parked for good (default 2).
	MaxProbes int
	// Limits is the server-side admission policy, mirrored client-side
	// so the fleet paces itself instead of harvesting 429s.
	Limits acme.RateLimits
}

func (c Config) withDefaults() Config {
	if c.Horizon <= 0 {
		c.Horizon = 120 * 24 * time.Hour
	}
	if c.Tick <= 0 {
		c.Tick = 24 * time.Hour
	}
	if c.RenewWindow <= 0 {
		c.RenewWindow = 30 * 24 * time.Hour
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 6 * time.Hour
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 4 * 24 * time.Hour
	}
	if c.FailureBudget <= 0 {
		c.FailureBudget = 4
	}
	if c.Probation <= 0 {
		c.Probation = 10 * 24 * time.Hour
	}
	if c.MaxProbes < 0 {
		c.MaxProbes = 0
	} else if c.MaxProbes == 0 {
		c.MaxProbes = 2
	}
	return c
}

// Estate is the slice of the serving world the fleet touches: publishing
// http-01 tokens and deploying rotated certificates. *world.World
// implements it; tests may substitute fakes.
type Estate interface {
	SetChallenge(hostname, token string) bool
	ClearChallenge(hostname string)
	RotateCert(hostname string, chain []*cert.Certificate) bool
}

// APIAddr is the fleet's ACME endpoint on the simulated network, outside
// every world address block.
var APIAddr = netip.MustParseAddrPort("172.31.255.1:80")

// CAName is the issuing authority the fleet orders from.
const CAName = "Let's Encrypt Authority X3"

// caDomain is the CAA identity checked at issuance.
const caDomain = "letsencrypt.org"

// Fleet is one renewal campaign over one world.
type Fleet struct {
	Cfg    Config
	Estate Estate
	// Server is the ACME CA (exported so tests can tamper with limits
	// and policy).
	Server *acme.Server
	// Client is the fleet's ACME client.
	Client *acme.Client
	// Clock is the campaign clock: manual, stepped once per tick, shared
	// with the server so issuance time is frozen within a tick and
	// independent of worker interleaving.
	Clock *simclock.Virtual

	hosts  []*hostState // sorted by hostname, fixed after enrollment
	byName map[string]*hostState
	queue  dueHeap

	errTotals [NumErrClasses]int
	// Rate-limit horizons learned from 429s (the defensive path when the
	// mirror underestimates the server's real limits).
	nextGlobal time.Time
	nextDomain map[string]time.Time
	mirror     limiter
}

// hostState is the fleet's bookkeeping for one enrolled host.
type hostState struct {
	hostname string
	reason   recommend.Rule
	key      cert.PublicKey
	state    State
	class    ErrClass
	attempts int
	fails    int // consecutive transient failures since last success
	probes   int // probation probes scheduled since last success
	renewals int
	terminal bool
	due      time.Time
	expiry   time.Time
}

// New assembles a fleet over the world: stands the ACME CA up on the
// simulated network, enrolls every host the scan recommends AdoptHTTPS or
// FixCertificate for, and schedules them all due at campaign start.
func New(w *world.World, set *resultset.Set, cfg Config) *Fleet {
	if cfg.Start.IsZero() {
		cfg.Start = w.ScanTime
	}
	cfg = cfg.withDefaults()
	clk := simclock.NewManual(cfg.Start)
	srv := acme.NewServer(w.CAs.MustLookup(CAName), caDomain, w.DNS, w.Net, clk)
	srv.EnforceKeyReuse = true
	srv.Limits = cfg.Limits
	w.Net.Handle(APIAddr, srv.Handle)

	f := &Fleet{
		Cfg:        cfg,
		Estate:     w,
		Server:     srv,
		Clock:      clk,
		byName:     make(map[string]*hostState),
		nextDomain: make(map[string]time.Time),
		mirror:     limiter{lim: cfg.Limits},
	}
	f.Client = &acme.Client{
		Server:     APIAddr,
		ServerName: "acme-v02.api.letsencrypt.org",
		Net:        w.Net,
		Vantage:    "fleet",
		Provision: func(hostname, token string) error {
			if !f.Estate.SetChallenge(hostname, token) {
				return fmt.Errorf("acmefleet: %s unknown to estate", hostname)
			}
			return nil
		},
	}
	for _, e := range Enroll(set) {
		f.enroll(e.Hostname, e.Reason)
	}
	return f
}

// enroll registers one host, due immediately.
func (f *Fleet) enroll(hostname string, reason recommend.Rule) {
	if _, dup := f.byName[hostname]; dup {
		return
	}
	h := &hostState{
		hostname: hostname,
		reason:   reason,
		key:      hostKey(f.Cfg.Seed, hostname),
		due:      f.Cfg.Start,
	}
	f.hosts = append(f.hosts, h)
	f.byName[hostname] = h
	heap.Push(&f.queue, h)
}

// Enrollee is one host the scan marked for automated remediation.
type Enrollee struct {
	Hostname string
	Reason   recommend.Rule
}

// Enroll selects the fleet's population from a scan: the hosts the §8
// checklist marks AdoptHTTPS (no https at all) or FixCertificate (https
// is broken) — the two classes a certificate deployment fixes. Sorted by
// hostname.
func Enroll(set *resultset.Set) []Enrollee {
	findings := recommend.Evaluate(set, nil, nil)
	seen := make(map[string]bool)
	var out []Enrollee
	for _, fd := range findings {
		if fd.Rule != recommend.AdoptHTTPS && fd.Rule != recommend.FixCertificate {
			continue
		}
		if seen[fd.Hostname] {
			continue
		}
		seen[fd.Hostname] = true
		out = append(out, Enrollee{Hostname: fd.Hostname, Reason: fd.Rule})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Hostname < out[j].Hostname })
	return out
}

// hostKey derives the host's account key deterministically from the seed:
// no RNG is shared across goroutines and re-runs mint identical keys.
func hostKey(seed int64, hostname string) cert.PublicKey {
	var id cert.KeyID
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(hostname))
	a := h.Sum64()
	h.Write([]byte("fleet-key"))
	b := h.Sum64()
	for i := 0; i < 8; i++ {
		id[i] = byte(a >> (8 * i))
		id[8+i] = byte(b >> (8 * i))
	}
	return cert.PublicKey{Type: cert.KeyRSA, Bits: 2048, ID: id}
}

// Run executes the campaign: one scheduler pass per tick until the
// horizon. Returns the campaign report. Respects ctx cancellation at
// tick boundaries.
func (f *Fleet) Run(ctx context.Context) *Report {
	rep := &Report{Enrolled: len(f.hosts)}
	ticks := int(f.Cfg.Horizon / f.Cfg.Tick)
	for i := 0; i <= ticks && ctx.Err() == nil; i++ {
		// Nominal tick time: never a live clock read, so snapshots are
		// independent of in-tick latency bookkeeping.
		now := f.Cfg.Start.Add(time.Duration(i) * f.Cfg.Tick)
		f.Clock.SetTime(now)

		due := f.popDue(now)
		batch := due[:0]
		for _, h := range due {
			// Client-side rate-limit pacing: a deferred host burns no
			// attempt and no server-side order — it just moves to the
			// window's next free slot.
			if next, ok := f.admit(acme.RegisteredDomain(h.hostname), now); !ok {
				h.due = next
				heap.Push(&f.queue, h)
				continue
			}
			batch = append(batch, h)
		}
		outs := f.dispatch(ctx, batch)
		// Barrier: outcomes apply in admitted order, making every state
		// transition — and therefore every snapshot — independent of
		// worker interleaving.
		for k, h := range batch {
			f.apply(h, outs[k], now)
		}
		rep.Snapshots = append(rep.Snapshots, f.snapshot(i, now))
	}
	for _, h := range f.hosts {
		rep.Hosts = append(rep.Hosts, HostStatus{
			Hostname: h.hostname,
			Reason:   h.reason,
			State:    h.state,
			Class:    h.class,
			Attempts: h.attempts,
			Renewals: h.renewals,
			Probes:   h.probes,
			Terminal: h.terminal,
		})
	}
	return rep
}

// popDue removes every host due at or before now, in (due, hostname)
// order.
func (f *Fleet) popDue(now time.Time) []*hostState {
	var out []*hostState
	for f.queue.Len() > 0 && !f.queue[0].due.After(now) {
		out = append(out, heap.Pop(&f.queue).(*hostState))
	}
	return out
}

// admit merges the client-side limit mirror with horizons learned from
// 429s. Returns (nextFree, false) when the order should wait.
func (f *Fleet) admit(domain string, now time.Time) (time.Time, bool) {
	if now.Before(f.nextGlobal) {
		return f.nextGlobal, false
	}
	if nd, ok := f.nextDomain[domain]; ok {
		if now.Before(nd) {
			return nd, false
		}
		delete(f.nextDomain, domain)
	}
	return f.mirror.admit(domain, now)
}

// outcome is one order attempt's result.
type outcome struct {
	chain []*cert.Certificate
	err   error
}

// dispatch runs the admitted batch across Workers goroutines and waits
// for all of them. Each host's network traffic is its own; the shared
// structures (ACME server, estate challenge table) are internally
// synchronized; and nothing read from them feeds back into fleet state
// except through apply, which runs after the barrier in batch order.
func (f *Fleet) dispatch(ctx context.Context, batch []*hostState) []outcome {
	outs := make([]outcome, len(batch))
	if len(batch) == 0 {
		return outs
	}
	workers := f.Cfg.Workers
	if workers > len(batch) {
		workers = len(batch)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range idx {
				outs[k] = f.attempt(ctx, batch[k])
			}
		}()
	}
	for k := range batch {
		idx <- k
	}
	close(idx)
	wg.Wait()
	return outs
}

// attempt drives one complete order for the host. Challenge tokens are
// withdrawn whatever the outcome — stale responders must not leak into
// later scans.
func (f *Fleet) attempt(ctx context.Context, h *hostState) outcome {
	defer f.Estate.ClearChallenge(h.hostname)
	chain, err := f.Client.Obtain(ctx, []string{h.hostname}, h.key)
	return outcome{chain: chain, err: err}
}

// apply advances one host's state machine from an order outcome at tick
// time now. Runs sequentially, in admitted order.
func (f *Fleet) apply(h *hostState, o outcome, now time.Time) {
	h.attempts++
	if o.err == nil {
		h.state = FleetRenewed
		h.class = ErrNone
		h.fails = 0
		h.probes = 0
		h.renewals++
		h.expiry = o.chain[0].NotAfter
		// Zero-downtime deploy happens here, on the scheduler goroutine:
		// handler swaps stay in a deterministic order.
		f.Estate.RotateCert(h.hostname, o.chain)
		h.due = h.expiry.Add(-f.Cfg.RenewWindow)
		if min := now.Add(f.Cfg.Tick); h.due.Before(min) {
			h.due = min // very short lifetimes still wait a tick
		}
		heap.Push(&f.queue, h)
		return
	}

	cls := Classify(o.err)
	h.class = cls
	f.errTotals[cls]++
	switch {
	case cls.Terminal():
		// CAA or key-reuse refusals: no number of retries changes DNS
		// policy or key ownership. Classified and done.
		h.state = FleetDenied
		h.terminal = true

	case cls == ErrRateLimited:
		// Not the host's fault: no failure-budget charge. Learn the
		// server's horizon and reschedule exactly there.
		retry := now.Add(f.Cfg.Tick)
		var rl *acme.RateLimitError
		if errors.As(o.err, &rl) && !rl.RetryAfter.IsZero() {
			if rl.RetryAfter.After(retry) {
				retry = rl.RetryAfter
			}
			if rl.Domain != "" {
				f.nextDomain[rl.Domain] = rl.RetryAfter
			} else if rl.Scope == "new-orders" || rl.Scope == "" {
				f.nextGlobal = rl.RetryAfter
			}
		}
		h.due = retry
		heap.Push(&f.queue, h)

	case h.state == FleetParked:
		// A failed probation probe re-opens the breaker immediately —
		// the scanner's half-open shape on the fleet timescale.
		if h.probes >= f.Cfg.MaxProbes {
			h.terminal = true // probation exhausted: parked for good
			return
		}
		h.probes++
		h.due = now.Add(f.Cfg.Probation)
		heap.Push(&f.queue, h)

	default:
		h.fails++
		if h.fails >= f.Cfg.FailureBudget {
			// Budget exhausted: park and schedule the first probe.
			h.state = FleetParked
			if f.Cfg.MaxProbes <= 0 {
				h.terminal = true
				return
			}
			h.probes = 1
			h.due = now.Add(f.Cfg.Probation)
			heap.Push(&f.queue, h)
			return
		}
		h.due = now.Add(f.backoff(h.hostname, h.fails-1))
		heap.Push(&f.queue, h)
	}
}

// backoff reuses the scanner's retry shape on the fleet's timescale:
// exponential doubling from BackoffBase capped at BackoffMax, scaled by a
// deterministic jitter in [0.5, 1.5) hashed from seed, attempt and
// hostname — decorrelated across hosts with no shared RNG.
func (f *Fleet) backoff(hostname string, attempt int) time.Duration {
	base := f.Cfg.BackoffBase
	if base <= 0 {
		return 0
	}
	if attempt > 30 {
		attempt = 30
	}
	d := base << uint(attempt)
	if f.Cfg.BackoffMax > 0 && d > f.Cfg.BackoffMax {
		d = f.Cfg.BackoffMax
	}
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(f.Cfg.Seed >> (8 * i))
		buf[8+i] = byte(int64(attempt) >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(hostname))
	frac := float64(h.Sum64()>>11) / float64(1<<53)
	return time.Duration(float64(d) * (0.5 + frac))
}

// limiter mirrors acme.RateLimits client-side: the fleet admits at most
// the server's capacity per window, in due order, so a correctly
// configured campaign never earns a 429. Decisions depend only on counts
// of identically timestamped grants, never on worker interleaving.
type limiter struct {
	lim    acme.RateLimits
	global []time.Time
	domain map[string][]time.Time
}

func (l *limiter) admit(domain string, now time.Time) (time.Time, bool) {
	if l.lim.Global > 0 && l.lim.GlobalWindow > 0 {
		l.global = prune(l.global, now.Add(-l.lim.GlobalWindow))
		if len(l.global) >= l.lim.Global {
			return l.global[0].Add(l.lim.GlobalWindow), false
		}
	}
	if l.lim.PerDomain > 0 && l.lim.PerDomainWindow > 0 {
		if l.domain == nil {
			l.domain = make(map[string][]time.Time)
		}
		l.domain[domain] = prune(l.domain[domain], now.Add(-l.lim.PerDomainWindow))
		if len(l.domain[domain]) >= l.lim.PerDomain {
			return l.domain[domain][0].Add(l.lim.PerDomainWindow), false
		}
		l.domain[domain] = append(l.domain[domain], now)
	}
	if l.lim.Global > 0 && l.lim.GlobalWindow > 0 {
		l.global = append(l.global, now)
	}
	return time.Time{}, true
}

func prune(grants []time.Time, floor time.Time) []time.Time {
	i := 0
	for i < len(grants) && !grants[i].After(floor) {
		i++
	}
	if i == 0 {
		return grants
	}
	return append(grants[:0], grants[i:]...)
}

// dueHeap orders hosts by (due, hostname): the renewal priority queue.
type dueHeap []*hostState

func (q dueHeap) Len() int { return len(q) }
func (q dueHeap) Less(i, j int) bool {
	if !q[i].due.Equal(q[j].due) {
		return q[i].due.Before(q[j].due)
	}
	return q[i].hostname < q[j].hostname
}
func (q dueHeap) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *dueHeap) Push(x any)        { *q = append(*q, x.(*hostState)) }
func (q *dueHeap) Pop() any {
	old := *q
	n := len(old)
	h := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return h
}
