package acmefleet

import (
	"hash/fnv"
	"net/netip"

	"repro/internal/dnssim"
	"repro/internal/simnet"
	"repro/internal/world"
)

func simnetFlaky(failCount int) simnet.FaultSpec {
	return simnet.FaultSpec{Mode: simnet.FaultFlaky, FailCount: failCount}
}

func simnetTruncate(bytes int) simnet.FaultSpec {
	return simnet.FaultSpec{Mode: simnet.FaultTruncate, TruncateBytes: bytes}
}

// Chaos describes the operational reality the long tail renews under: a
// slice of hosts whose port-80 service drops its first dials, a slice
// whose responses truncate mid-order, and a slice whose DNS locks
// issuance to another CA. Fractions are of the enrolled population.
type Chaos struct {
	// FlakyFrac of hosts reset their first 1–3 challenge dials before
	// recovering — the transient class the backoff schedule absorbs.
	FlakyFrac float64
	// TruncateFrac of hosts permanently truncate port-80 responses — the
	// persistent class the failure budget parks.
	TruncateFrac float64
	// CAADenyFrac of CAA-less hosts publish a CAA record authorizing a
	// different CA — the terminal policy-denial class.
	CAADenyFrac float64
}

// DefaultChaos matches the error mix the Let's Encrypt adoption study
// motivates: mostly transient network trouble, a persistent rump, a thin
// band of policy denials.
func DefaultChaos() Chaos {
	return Chaos{FlakyFrac: 0.10, TruncateFrac: 0.02, CAADenyFrac: 0.03}
}

// Outcome lists which hosts each fault class landed on.
type ChaosOutcome struct {
	Flaky     []string
	Truncated []string
	CAADenied []string
}

// Apply injects the faults over the host list. Selection hashes each
// hostname against the seed — per-host, order-free, identical under any
// iteration of the caller — and bands the unit interval as
// [0, deny) [deny, deny+flaky) [deny+flaky, deny+flaky+truncate).
// CAA denial skips hosts that already publish CAA records (AddCAA
// appends, and any matching record would keep issuance allowed).
func (c Chaos) Apply(w *world.World, hosts []string, seed int64) ChaosOutcome {
	var out ChaosOutcome
	for _, hostname := range hosts {
		s, ok := w.Sites[hostname]
		if !ok || !s.IP.IsValid() {
			continue
		}
		h := fnv.New64a()
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(seed >> (8 * i))
		}
		h.Write(buf[:])
		h.Write([]byte(hostname))
		h.Write([]byte("fleet-chaos"))
		v := h.Sum64()
		u := float64(v>>11) / float64(1 << 53)
		ep80 := netip.AddrPortFrom(s.IP, 80)
		switch {
		case u < c.CAADenyFrac:
			if len(w.DNS.LookupCAA(hostname)) > 0 {
				continue
			}
			w.DNS.AddCAA(hostname, dnssim.CAARecord{Tag: "issue", Value: "digicert.com"})
			out.CAADenied = append(out.CAADenied, hostname)
		case u < c.CAADenyFrac+c.FlakyFrac:
			w.Net.SetFaultSpec(ep80, simnetFlaky(1+int(v%3)))
			out.Flaky = append(out.Flaky, hostname)
		case u < c.CAADenyFrac+c.FlakyFrac+c.TruncateFrac:
			w.Net.SetFaultSpec(ep80, simnetTruncate(int(v%30)))
			out.Truncated = append(out.Truncated, hostname)
		}
	}
	return out
}
