package acmefleet

import (
	"bytes"
	"context"
	"net/netip"
	"testing"
	"time"

	"repro/internal/acme"
	"repro/internal/dnssim"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/simnet"
	"repro/internal/world"
)

// fixture builds a private small world and scans it. Every test gets a
// fresh world: campaigns mutate serving state.
func fixture(tb testing.TB, seed int64) (*world.World, *resultset.Set) {
	tb.Helper()
	w := world.MustBuild(world.Config{Seed: seed, Scale: 0.004})
	cfg := scanner.DefaultConfig(w.Stores["apple"], w.ScanTime)
	cfg.Seed = seed
	cfg.Clock = w.Clock
	sc := scanner.New(w.Net, w.DNS, w.Class, cfg)
	b := resultset.NewBuilder(resultset.Options{CountryOf: w.CountryOf, SizeHint: len(w.GovHosts)})
	sc.ScanStream(context.Background(), w.GovHosts, b.Add)
	return w, b.Build()
}

// quickConfig keeps campaigns short: 30 simulated days at 12h ticks.
func quickConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Horizon:       30 * 24 * time.Hour,
		Tick:          12 * time.Hour,
		Workers:       4,
		BackoffBase:   6 * time.Hour,
		BackoffMax:    2 * 24 * time.Hour,
		FailureBudget: 3,
		Probation:     3 * 24 * time.Hour,
		MaxProbes:     2,
	}
}

func findStatus(tb testing.TB, rep *Report, hostname string) HostStatus {
	tb.Helper()
	for _, h := range rep.Hosts {
		if h.Hostname == hostname {
			return h
		}
	}
	tb.Fatalf("%s not in report", hostname)
	return HostStatus{}
}

func TestEnrollSelectsMisconfigured(t *testing.T) {
	_, set := fixture(t, 41)
	enrolled := Enroll(set)
	if len(enrolled) < 20 {
		t.Fatalf("only %d hosts enrolled; world too healthy for a fleet test", len(enrolled))
	}
	for i := 1; i < len(enrolled); i++ {
		if enrolled[i-1].Hostname >= enrolled[i].Hostname {
			t.Fatal("enrollment not sorted by hostname")
		}
	}
}

// TestCampaignConvergesCleanWorld: with no injected faults every enrolled
// host renews, the estate actually serves the new certificates, and the
// report converges.
func TestCampaignConvergesCleanWorld(t *testing.T) {
	w, set := fixture(t, 41)
	f := New(w, set, quickConfig(41))
	rep := f.Run(context.Background())
	if rep.Enrolled == 0 {
		t.Fatal("empty campaign")
	}
	if !rep.Converged() {
		t.Fatal("campaign did not converge")
	}
	final := rep.Final()
	if final.Renewed != rep.Enrolled {
		t.Fatalf("renewed %d of %d on a fault-free world (parked=%d denied=%d)",
			final.Renewed, rep.Enrolled, final.Parked, final.Denied)
	}
	// The serving world now has the rotated certificates: every renewed
	// host's site carries a fleet-issued Let's Encrypt chain.
	for _, h := range rep.ChangedHosts() {
		s, ok := w.Host(h)
		if !ok || len(s.Chain) == 0 {
			t.Fatalf("%s has no chain after rotation", h)
		}
		if s.Chain[0].PublicKey.ID != hostKey(41, h).ID {
			t.Fatalf("%s serving a chain the fleet did not issue", h)
		}
	}
}

// TestFaultMatrix drives the full fault × error-class matrix: flaky dial,
// mid-handshake reset, truncated response, CAA denial — each against its
// asserted terminal state, retry count and error class — and proves the
// snapshot stream is byte-identical across reruns at any worker count.
func TestFaultMatrix(t *testing.T) {
	type caseSpec struct {
		name  string
		fault func(w *world.World, ip netip.Addr, zone *dnssim.Zone, host string)
	}
	// campaign builds a fresh world, injects one fault per designated
	// host, runs the fleet, and returns (report, designated hosts).
	campaign := func(workers int) (*Report, []string) {
		w, set := fixture(t, 41)
		enrolled := Enroll(set)
		if len(enrolled) < 8 {
			t.Fatalf("need ≥8 enrolled hosts, have %d", len(enrolled))
		}
		// Designate four enrolled hosts, spread across the list.
		pick := func(i int) string { return enrolled[i*len(enrolled)/8].Hostname }
		flaky, midHS, trunc := pick(1), pick(3), pick(5)
		// CAA denial needs a host with no pre-existing CAA records
		// (records append, and any letsencrypt record keeps it allowed).
		caaDeny := ""
		for i := 6 * len(enrolled) / 8; i < len(enrolled); i++ {
			h := enrolled[i].Hostname
			if h != flaky && h != midHS && h != trunc && len(w.DNS.LookupCAA(h)) == 0 {
				caaDeny = h
				break
			}
		}
		if caaDeny == "" {
			t.Fatal("no CAA-free host to deny")
		}
		ep := func(h string) netip.AddrPort {
			s, _ := w.Host(h)
			return netip.AddrPortFrom(s.IP, 80)
		}
		// Transient: first 2 challenge dials reset, then recovery.
		w.Net.SetFaultSpec(ep(flaky), simnet.FaultSpec{Mode: simnet.FaultFlaky, FailCount: 2})
		// Persistent: every order dies mid-handshake / mid-body.
		w.Net.SetFaultSpec(ep(midHS), simnet.FaultSpec{Mode: simnet.FaultMidHandshake})
		w.Net.SetFaultSpec(ep(trunc), simnet.FaultSpec{Mode: simnet.FaultTruncate, TruncateBytes: 12})
		// Terminal policy: DNS authorizes a different CA.
		w.DNS.AddCAA(caaDeny, dnssim.CAARecord{Tag: "issue", Value: "digicert.com"})

		cfg := quickConfig(41)
		cfg.Workers = workers
		f := New(w, set, cfg)
		rep := f.Run(context.Background())
		return rep, []string{flaky, midHS, trunc, caaDeny}
	}

	rep, hosts := campaign(4)
	flaky, midHS, trunc, caaDeny := hosts[0], hosts[1], hosts[2], hosts[3]

	// Flaky dial: two resets absorbed by backoff, then renewed.
	st := findStatus(t, rep, flaky)
	if st.State != FleetRenewed || st.Attempts != 3 || st.Class != ErrNone {
		t.Errorf("flaky: %+v, want renewed after exactly 3 attempts", st)
	}

	// Mid-handshake reset and truncation are persistent: the failure
	// budget parks the host, probation probes fail too, terminal parked.
	wantAttempts := 3 + 2 // FailureBudget + MaxProbes
	for _, h := range []string{midHS, trunc} {
		st := findStatus(t, rep, h)
		if st.State != FleetParked || !st.Terminal {
			t.Errorf("%s: state=%v terminal=%v, want terminally parked", h, st.State, st.Terminal)
		}
		if st.Attempts != wantAttempts {
			t.Errorf("%s: attempts=%d, want %d (budget+probes)", h, st.Attempts, wantAttempts)
		}
		if st.Class != ErrChallenge {
			t.Errorf("%s: class=%v, want challenge (VA-side network fault)", h, st.Class)
		}
	}

	// CAA denial is terminal on the first attempt: no retries.
	st = findStatus(t, rep, caaDeny)
	if st.State != FleetDenied || st.Attempts != 1 || st.Class != ErrCAA {
		t.Errorf("caa: %+v, want denied after exactly 1 attempt", st)
	}

	if !rep.Converged() {
		t.Error("fault-matrix campaign did not converge")
	}
	final := rep.Final()
	if final.Errors[ErrChallenge] == 0 || final.Errors[ErrCAA] != 1 {
		t.Errorf("error histogram = %v", final.Errors)
	}

	// Determinism: byte-identical snapshot streams at any worker count.
	base := rep.Bytes()
	for _, workers := range []int{1, 8} {
		again, _ := campaign(workers)
		if !bytes.Equal(base, again.Bytes()) {
			t.Fatalf("snapshot stream differs at workers=%d", workers)
		}
	}
}

// TestRateLimitExhaustion exercises the 429 path: the server's limits are
// tightened after construction, so the client-side mirror underestimates
// them and orders bounce. The fleet must reschedule at the advertised
// horizon — classifying, never parking, never hot-retrying within the
// window — and still converge.
func TestRateLimitExhaustion(t *testing.T) {
	w, set := fixture(t, 41)
	cfg := quickConfig(41)
	cfg.Workers = 1 // which order trips the limit is arrival-order-dependent
	f := New(w, set, cfg)
	window := 24 * time.Hour
	f.Server.Limits = acme.RateLimits{Global: 40, GlobalWindow: window}
	rep := f.Run(context.Background())

	final := rep.Final()
	if final.Errors[ErrRateLimited] == 0 {
		t.Fatal("no 429s despite a 40-order global window")
	}
	if !rep.Converged() {
		t.Fatal("rate-limited campaign did not converge")
	}
	for _, h := range rep.Hosts {
		if h.State == FleetParked && h.Class == ErrRateLimited {
			t.Fatalf("%s parked for rate limiting: 429s must not charge the failure budget", h.Hostname)
		}
	}
	// Issuance respected the server's cap: any two adjacent ticks fall
	// inside one 24h sliding window (snapshots are 12h apart), so at most
	// 40 successes land across them.
	for i := 2; i < len(rep.Snapshots); i++ {
		if d := rep.Snapshots[i].Renewals - rep.Snapshots[i-2].Renewals; d > 40 {
			t.Fatalf("%d renewals inside one rate-limit window at tick %d", d, i)
		}
	}
}

// TestClientSidePacing: when the fleet knows the limits, the mirror defers
// orders client-side and the campaign earns zero 429s.
func TestClientSidePacing(t *testing.T) {
	w, set := fixture(t, 41)
	cfg := quickConfig(41)
	cfg.Limits = acme.RateLimits{Global: 60, GlobalWindow: 24 * time.Hour}
	f := New(w, set, cfg)
	rep := f.Run(context.Background())
	if n := rep.Final().Errors[ErrRateLimited]; n != 0 {
		t.Fatalf("%d 429s despite client-side pacing", n)
	}
	if !rep.Converged() {
		t.Fatal("paced campaign did not converge")
	}
	if rep.Final().Renewed != rep.Enrolled {
		t.Fatalf("renewed %d of %d under pacing", rep.Final().Renewed, rep.Enrolled)
	}
}

// TestKeyReuseDenied: the §8.1 policy refuses a key already certified for
// an unrelated host — terminally, with no retries.
func TestKeyReuseDenied(t *testing.T) {
	w, set := fixture(t, 41)
	cfg := quickConfig(41)
	cfg.Workers = 1 // completion order decides which host owns the key
	f := New(w, set, cfg)
	if len(f.hosts) < 2 {
		t.Fatal("need two hosts")
	}
	// Two unrelated hosts sharing one private key: the second to finalize
	// must be refused.
	f.hosts[1].key = f.hosts[0].key
	rep := f.Run(context.Background())
	st := findStatus(t, rep, f.hosts[1].hostname)
	if st.State != FleetDenied || st.Class != ErrKeyReuse || st.Attempts != 1 {
		t.Errorf("shared-key host: %+v, want key-reuse denial on first attempt", st)
	}
	if first := findStatus(t, rep, f.hosts[0].hostname); first.State != FleetRenewed {
		t.Errorf("key owner: %+v, want renewed", first)
	}
}

// TestProbationRecovery: a host that fails its way into parking but
// recovers before the probe attempt closes the breaker and renews —
// parking is a cooldown, not a death sentence.
func TestProbationRecovery(t *testing.T) {
	w, set := fixture(t, 41)
	enrolled := Enroll(set)
	victim := enrolled[0].Hostname
	s, _ := w.Host(victim)
	// Exactly FailureBudget resets: the budget parks the host, and the
	// probation probe hits a recovered service.
	w.Net.SetFaultSpec(netip.AddrPortFrom(s.IP, 80),
		simnet.FaultSpec{Mode: simnet.FaultFlaky, FailCount: 3})
	f := New(w, set, quickConfig(41))
	rep := f.Run(context.Background())
	st := findStatus(t, rep, victim)
	if st.State != FleetRenewed || st.Renewals == 0 {
		t.Fatalf("victim: %+v, want renewed after probation", st)
	}
	if st.Attempts != 4 {
		t.Errorf("victim attempts = %d, want 4 (3 failures + successful probe)", st.Attempts)
	}
}

// TestRenewalCycle: a long horizon crosses the first certificates' renewal
// window (90-day lifetime − 30-day window = due at day 60), so hosts renew
// more than once and the world keeps serving through each rotation.
func TestRenewalCycle(t *testing.T) {
	w, set := fixture(t, 41)
	cfg := quickConfig(41)
	cfg.Horizon = 100 * 24 * time.Hour
	cfg.Tick = 24 * time.Hour
	f := New(w, set, cfg)
	rep := f.Run(context.Background())
	multi := 0
	for _, h := range rep.Hosts {
		if h.Renewals >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no host renewed twice over a 100-day horizon")
	}
	if rep.Final().Renewals <= rep.Enrolled {
		t.Fatalf("cumulative renewals %d should exceed population %d",
			rep.Final().Renewals, rep.Enrolled)
	}
}

// TestChaosErrorDecay: under the default chaos profile the error-class
// histogram decays — transient errors concentrate in early ticks and
// stop accumulating once backoff absorbs them.
func TestChaosErrorDecay(t *testing.T) {
	w, set := fixture(t, 41)
	enrolled := Enroll(set)
	hosts := make([]string, len(enrolled))
	for i, e := range enrolled {
		hosts[i] = e.Hostname
	}
	out := DefaultChaos().Apply(w, hosts, 41)
	if len(out.Flaky) == 0 || len(out.CAADenied) == 0 {
		t.Fatalf("chaos landed on too few hosts: %d flaky, %d denied, %d truncated",
			len(out.Flaky), len(out.CAADenied), len(out.Truncated))
	}
	f := New(w, set, quickConfig(41))
	rep := f.Run(context.Background())
	if !rep.Converged() {
		t.Fatal("chaos campaign did not converge")
	}
	mid := len(rep.Snapshots) / 2
	early := rep.Snapshots[mid].Errors[ErrChallenge]
	late := rep.Final().Errors[ErrChallenge] - early
	if early == 0 {
		t.Fatal("no challenge errors in the first half of the campaign")
	}
	if late >= early {
		t.Errorf("challenge errors not decaying: %d in first half, %d in second", early, late)
	}
	for _, h := range out.CAADenied {
		if st := findStatus(t, rep, h); st.State != FleetDenied {
			t.Errorf("%s: state=%v, want denied", h, st.State)
		}
	}
}
