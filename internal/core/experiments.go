package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/acmefleet"
	"repro/internal/analysis"
	"repro/internal/certwatch"
	"repro/internal/crawler"
	"repro/internal/ctlog"
	"repro/internal/hstspreload"
	"repro/internal/longitudinal"
	"repro/internal/notify"
	"repro/internal/recommend"
	"repro/internal/report"
	"repro/internal/world"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	// ID is the index key, e.g. "T2" (Table 2) or "F7" (Figure 7).
	ID string
	// Title describes the artifact.
	Title string
	// Datasets names the inputs the experiment reads: registry datasets
	// ("worldwide", "usa:all", "rok", "usa:*" for every GSA list) plus the
	// pseudo-resources "linkgraph" (the memoized hyperlink graph), "crawl"
	// (a fresh BFS is the measured workload itself) and "ct" (the world's
	// CT log, built with the world). The scheduler pre-warms the warmable
	// ones concurrently before the experiment runs.
	Datasets []string
	// MutatesWorld marks experiments that remediate the world and rescan
	// (S722, E4). The scheduler runs them alone, as barriers: nothing else
	// may scan while the world changes underneath.
	MutatesWorld bool
	// Run computes and renders the artifact.
	Run func(ctx context.Context, s *Study) (string, error)
}

var (
	registryOnce sync.Once
	registryExps []Experiment
	registryIdx  map[string]int // lower-cased ID -> registryExps index
)

// registry builds the experiment table and its case-insensitive ID index
// once; callers must not mutate the returned slice.
func registry() ([]Experiment, map[string]int) {
	registryOnce.Do(func() {
		ww := []string{"worldwide"}
		registryExps = []Experiment{
			{ID: "T1", Title: "Table 1: Overlap with public top millions", Run: runT1},
			{ID: "T2", Title: "Table 2: Worldwide validity and error taxonomy", Datasets: ww, Run: runT2},
			{ID: "F1", Title: "Figure 1: Worldwide per-country view", Datasets: ww, Run: runF1},
			{ID: "F2", Title: "Figure 2: Top 40 cert issuers worldwide", Datasets: ww, Run: runF2},
			{ID: "F3", Title: "Figure 3: Certificates by issue and expiry date", Datasets: ww, Run: runF3},
			{ID: "F4", Title: "Figure 4: Validity by key type and signing algorithm", Datasets: ww, Run: runF4},
			{ID: "F5", Title: "Figure 5: Validity by hosting type (USA/ROK/world)", Datasets: []string{"usa:all", "rok", "worldwide"}, Run: runF5},
			{ID: "F6", Title: "Figure 6: Validity and hosting, gov vs non-gov top million", Datasets: ww, Run: runF6},
			{ID: "F7", Title: "Figure 7: Valid https rate by top-million rank", Datasets: ww, Run: runF7},
			{ID: "F8", Title: "Figure 8: USA cert issuers", Datasets: []string{"usa:all"}, Run: runF8},
			{ID: "F9", Title: "Figure 9: USA key/signing validity", Datasets: []string{"usa:all"}, Run: runF9},
			{ID: "F10", Title: "Figure 10: USA & ROK validity by issue date", Datasets: []string{"usa:all", "rok"}, Run: runF10},
			{ID: "F11", Title: "Figure 11: ROK cert issuers", Datasets: []string{"rok"}, Run: runF11},
			{ID: "F12", Title: "Figure 12: ROK key/signing validity", Datasets: []string{"rok"}, Run: runF12},
			{ID: "F13", Title: "Figure 13: Disclosure response by population rank", Datasets: ww, Run: runF13},
			{ID: "TA1", Title: "Table A.1: US GSA dataset breakdown", Datasets: []string{"usa:*"}, Run: runTA1},
			{ID: "TA2", Title: "Table A.2: US per-dataset vulnerability breakdown", Datasets: []string{"usa:*"}, Run: runTA2},
			{ID: "TA3", Title: "Table A.3: South Korea dataset breakdown", Datasets: []string{"rok"}, Run: runTA3},
			{ID: "TA4", Title: "Table A.4: South Korea vulnerability breakdown", Datasets: []string{"rok"}, Run: runTA4},
			{ID: "FA1", Title: "Figure A.1: USA validity by hosting per dataset", Datasets: []string{"usa:*"}, Run: runFA1},
			{ID: "FA2", Title: "Figure A.2: Top EV CAs (USA)", Datasets: []string{"usa:all"}, Run: runFA2},
			{ID: "FA3", Title: "Figure A.3: Top EV CAs (ROK)", Datasets: []string{"rok"}, Run: runFA3},
			{ID: "FA4", Title: "Figure A.4: Crawler effectiveness", Datasets: []string{"crawl"}, Run: runFA4},
			{ID: "FA5", Title: "Figure A.5: Cross-government links", Datasets: []string{"linkgraph"}, Run: runFA5},
			{ID: "FA6", Title: "Figure A.6: Top EV CAs (worldwide)", Datasets: ww, Run: runFA6},
			{ID: "S533", Title: "Section 5.3.3: Key pair reuse", Datasets: ww, Run: runS533},
			{ID: "S534", Title: "Section 5.3.4: CAA record adoption", Run: runS534},
			{ID: "S722", Title: "Section 7.2.2: Notification effectiveness", Datasets: ww, MutatesWorld: true, Run: runS722},
			{ID: "E1", Title: "Extension: CT coverage of government certificates (§2.2)", Datasets: []string{"ct"}, Run: runE1},
			{ID: "E2", Title: "Extension: CT lookalike monitoring (§7.3.2)", Datasets: []string{"ct"}, Run: runE2},
			{ID: "E3", Title: "Extension: Recommendations checklist (§8)", Datasets: ww, Run: runE3},
			{ID: "E4", Title: "Extension: Longitudinal monitoring (future work)", Datasets: ww, MutatesWorld: true, Run: runE4},
			{ID: "E5", Title: "Extension: HSTS preload impact (§8.2)", Datasets: ww, Run: runE5},
			{ID: "E6", Title: "Extension: §8.1 key-reuse issuance policy replay", Datasets: ww, Run: runE6},
			// E7/E8 reach "worldwide" through FleetReport's corpus scan, so it
			// is declared for the pre-warm alongside (E7) the post-campaign
			// rescan dataset; E8 only reads the campaign report and never
			// fetches "acmefleet" itself.
			{ID: "E7", Title: "Extension: ACME renewal fleet adoption curve (§8.1)", Datasets: []string{"worldwide", "acmefleet"}, MutatesWorld: true, Run: runE7},
			{ID: "E8", Title: "Extension: renewal fleet error-class decay (§8.1)", Datasets: []string{"worldwide"}, MutatesWorld: true, Run: runE8},
		}
		registryIdx = make(map[string]int, len(registryExps))
		for i := range registryExps {
			registryIdx[strings.ToLower(registryExps[i].ID)] = i
		}
	})
	return registryExps, registryIdx
}

// Experiments returns the full registry, ordered as in DESIGN.md. The
// slice is a copy; the Experiment values (including Datasets slices) are
// shared and read-only.
func Experiments() []Experiment {
	exps, _ := registry()
	out := make([]Experiment, len(exps))
	copy(out, exps)
	return out
}

// LookupExperiment resolves an experiment by ID, case-insensitively,
// through the lazily-built registry index.
func LookupExperiment(id string) (Experiment, bool) {
	exps, idx := registry()
	i, ok := idx[strings.ToLower(id)]
	if !ok {
		return Experiment{}, false
	}
	return exps[i], true
}

// RunExperiment executes the experiment with the given ID.
func RunExperiment(ctx context.Context, s *Study, id string) (string, error) {
	e, ok := LookupExperiment(id)
	if !ok {
		return "", fmt.Errorf("core: unknown experiment %q", id)
	}
	return e.Run(ctx, s)
}

func runT1(_ context.Context, s *Study) (string, error) {
	return report.Table1(analysis.ComputeOverlap(s.World.TopLists)), nil
}

func runT2(ctx context.Context, s *Study) (string, error) {
	return report.Table2(analysis.ComputeTable2(s.Worldwide(ctx))), nil
}

func runF1(ctx context.Context, s *Study) (string, error) {
	rows := analysis.CountryBreakdown(s.Worldwide(ctx))
	return report.Figure1(rows, 40), nil
}

func runF2(ctx context.Context, s *Study) (string, error) {
	issuers := analysis.IssuerBreakdown(s.Worldwide(ctx), s.Store())
	return report.Issuers("Figure 2: Top 40 Cert Issuers for Government Websites", issuers, 40), nil
}

func runF3(ctx context.Context, s *Study) (string, error) {
	d := analysis.ComputeDurationStats(s.Worldwide(ctx))
	return report.Durations("Figure 3 / Section 5.3.1: Certificates by issue and expiry", d), nil
}

func runF4(ctx context.Context, s *Study) (string, error) {
	m := analysis.ComputeKeyAlgoMatrix(s.Worldwide(ctx))
	out := report.KeyAlgo("Figure 4: Worldwide validity by key type and CA signing algorithm", m)
	out += "\nNegotiated protocol versions (§5.3's unsupported-protocol population):\n"
	for _, c := range analysis.ComputeVersionBreakdown(s.Worldwide(ctx)) {
		out += fmt.Sprintf("  %-16s %6d hosts, %d valid\n", c.Version, c.Total, c.Valid)
	}
	return out, nil
}

func runF5(ctx context.Context, s *Study) (string, error) {
	var b strings.Builder
	usa := s.USAAll(ctx)
	rok := s.ROK(ctx)
	ww := s.Worldwide(ctx)
	b.WriteString(report.Hosting("Figure 5 (left): USA validity by hosting", analysis.HostingBreakdown(usa)))
	b.WriteByte('\n')
	b.WriteString(report.Hosting("Figure 5 (center): ROK validity by hosting", analysis.HostingBreakdown(rok)))
	b.WriteByte('\n')
	b.WriteString(report.Hosting("Figure 5 (right): Worldwide validity by hosting", analysis.HostingBreakdown(ww)))
	b.WriteByte('\n')
	b.WriteString(report.Hosting("Providers (worldwide)", analysis.ProviderBreakdown(ww)))
	b.WriteString(fmt.Sprintf("\nUSA cloud+CDN share: %.2f%%   ROK cloud+CDN share: %.2f%%\n",
		100*analysis.CloudCDNShare(usa), 100*analysis.CloudCDNShare(rok)))
	return b.String(), nil
}

func runF6(ctx context.Context, s *Study) (string, error) {
	return report.RankComparison(s.RankComparison(ctx)), nil
}

func runF7(ctx context.Context, s *Study) (string, error) {
	rc := s.RankComparison(ctx)
	return report.RankComparison(rc) + "\n" + report.RankBins(rc), nil
}

func runF8(ctx context.Context, s *Study) (string, error) {
	issuers := analysis.IssuerBreakdown(s.USAAll(ctx), s.Store())
	return report.Issuers("Figure 8: USA certificate validity by issuing authority", issuers, 40), nil
}

func runF9(ctx context.Context, s *Study) (string, error) {
	m := analysis.ComputeKeyAlgoMatrix(s.USAAll(ctx))
	return report.KeyAlgo("Figure 9: USA validity by key type and CA signing algorithm", m), nil
}

func runF10(ctx context.Context, s *Study) (string, error) {
	var b strings.Builder
	b.WriteString(report.Durations("Figure 10 (USA): validity by issue date", analysis.ComputeDurationStats(s.USAAll(ctx))))
	b.WriteByte('\n')
	b.WriteString(report.Durations("Figure 10 (ROK): validity by issue date", analysis.ComputeDurationStats(s.ROK(ctx))))
	return b.String(), nil
}

func runF11(ctx context.Context, s *Study) (string, error) {
	issuers := analysis.IssuerBreakdown(s.ROK(ctx), s.Store())
	return report.Issuers("Figure 11: ROK certificate validity by issuing authority", issuers, 40), nil
}

func runF12(ctx context.Context, s *Study) (string, error) {
	m := analysis.ComputeKeyAlgoMatrix(s.ROK(ctx))
	return report.KeyAlgo("Figure 12: ROK validity by key type and CA signing algorithm", m), nil
}

func runF13(ctx context.Context, s *Study) (string, error) {
	reports := notify.BuildReports(s.Worldwide(ctx), s.deadLinked())
	campaign := notify.Campaign(reports, s.Rand("disclosure"))
	return report.Campaign(campaign), nil
}

func runTA1(ctx context.Context, s *Study) (string, error) {
	rows, err := s.gsaBreakdowns(ctx)
	if err != nil {
		return "", err
	}
	return report.Datasets("Table A.1: Breakdown of US GSA Datasets", rows), nil
}

func runTA2(ctx context.Context, s *Study) (string, error) {
	var b strings.Builder
	b.WriteString("Table A.2: Breakdown of Govt. Websites in United States by Vulnerability\n\n")
	for _, ds := range s.World.USA.Datasets {
		results, err := s.USADataset(ctx, ds.Key)
		if err != nil {
			return "", err
		}
		b.WriteString(report.Table2WithTitle(ds.Name, analysis.ComputeTable2(results)))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func runTA3(ctx context.Context, s *Study) (string, error) {
	rows := []report.DatasetBreakdown{{Name: "South Korea Domains Set", Tab: analysis.ComputeTable2(s.ROK(ctx))}}
	return report.Datasets("Table A.3: Breakdown of South Korea Datasets", rows), nil
}

func runTA4(ctx context.Context, s *Study) (string, error) {
	return report.Table2WithTitle("Table A.4: Breakdown of the South Korean Govt. websites by vulnerability",
		analysis.ComputeTable2(s.ROK(ctx))), nil
}

func runFA1(ctx context.Context, s *Study) (string, error) {
	var b strings.Builder
	b.WriteString("Figure A.1: Certificate validity by hosting per GSA dataset\n\n")
	for _, ds := range s.World.USA.Datasets {
		results, err := s.USADataset(ctx, ds.Key)
		if err != nil {
			return "", err
		}
		b.WriteString(report.Hosting(ds.Name, analysis.HostingBreakdown(results)))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

func runFA2(ctx context.Context, s *Study) (string, error) {
	ev := analysis.EVIssuerBreakdown(s.USAAll(ctx), s.Store())
	return report.EV(analysis.ComputeEVStats(s.USAAll(ctx), s.Store())) + "\n" +
		report.Issuers("Figure A.2: Top EV CAs for USA government websites", ev, 20), nil
}

func runFA3(ctx context.Context, s *Study) (string, error) {
	ev := analysis.EVIssuerBreakdown(s.ROK(ctx), s.Store())
	return report.EV(analysis.ComputeEVStats(s.ROK(ctx), s.Store())) + "\n" +
		report.Issuers("Figure A.3: Top EV CAs for ROK government websites", ev, 20), nil
}

func runFA4(ctx context.Context, s *Study) (string, error) {
	c := crawler.New(&crawler.WebFetcher{Dialer: s.World.Net, Resolver: s.World.DNS, Vantage: "lab"})
	_, stats := c.Crawl(ctx, s.World.SeedHosts)
	return report.Crawl(stats), nil
}

func runFA5(_ context.Context, s *Study) (string, error) {
	return report.CrossGov(analysis.ComputeCrossGov(s.LinkGraph(), s.CountryOf)), nil
}

func runFA6(ctx context.Context, s *Study) (string, error) {
	ev := analysis.EVIssuerBreakdown(s.Worldwide(ctx), s.Store())
	return report.EV(analysis.ComputeEVStats(s.Worldwide(ctx), s.Store())) + "\n" +
		report.Issuers("Figure A.6: Top EV CAs worldwide", ev, 20), nil
}

func runS533(ctx context.Context, s *Study) (string, error) {
	reuse := analysis.ComputeKeyReuse(s.Worldwide(ctx))
	var b strings.Builder
	b.WriteString(report.KeyReuse(reuse))
	violators := analysis.ComputeWildcardViolators(s.Worldwide(ctx))
	if len(violators) > 0 {
		b.WriteString("\nTop single-country wildcard violators:\n")
		max := 5
		if len(violators) < max {
			max = len(violators)
		}
		for _, v := range violators[:max] {
			b.WriteString(fmt.Sprintf("  %s: %d certificates across %d hostnames\n", v.Country, v.Certs, v.Hosts))
		}
	}
	return b.String(), nil
}

func runS534(_ context.Context, s *Study) (string, error) {
	with, valid := s.World.DNS.CAACount()
	return report.CAA(with, valid, len(s.World.GovHosts)), nil
}

func runS722(ctx context.Context, s *Study) (string, error) {
	before := s.Worldwide(ctx)
	invalid := s.InvalidWorldwideHosts(ctx)
	changed := s.World.Remediate(invalid, world.DefaultRemediationRates(), s.Rand("remediation"))
	after := s.FollowUpScan(ctx, nil)
	eff, err := notify.MeasureEffectiveness(before, after)
	if err != nil {
		return "", err
	}
	// The remediation mutated the world under the cache: mark exactly the
	// changed hosts stale so the next worldwide Get patches the set
	// instead of rescanning the whole corpus.
	s.MarkDatasetDirty("worldwide", changed.ChangedHosts())
	return report.Effectiveness(eff), nil
}

// gsaBreakdowns computes Table 2 per GSA dataset.
func (s *Study) gsaBreakdowns(ctx context.Context) ([]report.DatasetBreakdown, error) {
	var rows []report.DatasetBreakdown
	for _, ds := range s.World.USA.Datasets {
		results, err := s.USADataset(ctx, ds.Key)
		if err != nil {
			return nil, err
		}
		rows = append(rows, report.DatasetBreakdown{Name: ds.Name, Tab: analysis.ComputeTable2(results)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows, nil
}

// deadLinked maps countries to unreachable hostnames still linked from live
// pages (part of the disclosure reports).
func (s *Study) deadLinked() map[string][]string {
	dead := map[string]bool{}
	for _, h := range s.World.UnreachableHosts {
		dead[h] = true
	}
	out := map[string][]string{}
	seen := map[string]bool{}
	for _, h := range s.World.GovHosts {
		site := s.World.Sites[h]
		for _, l := range site.Links {
			if dead[l] && !seen[l] {
				seen[l] = true
				out[site.Country] = append(out[site.Country], l)
			}
		}
	}
	return out
}

// --- Extension experiments (paper discussion sections made executable) ---

func runE1(_ context.Context, s *Study) (string, error) {
	log := s.World.CT
	cov := log.MeasureCoverage(s.World.GovLeafCerts())
	var b strings.Builder
	b.WriteString("Extension E1: Certificate Transparency coverage of government certificates\n")
	b.WriteString("===========================================================================\n")
	fmt.Fprintf(&b, "log size:                   %d entries\n", log.Size())
	fmt.Fprintf(&b, "distinct government leaves: %d\n", cov.Total)
	fmt.Fprintf(&b, "present in the log:         %d (%.1f%%)\n", cov.Logged, cov.Pct())
	b.WriteString("(§2.2: CT misses ~10% of com/net/org; the government gap was unmeasured.\n")
	b.WriteString(" Here the gap also includes self-signed and internal-CA chains, which\n")
	b.WriteString(" never reach a log at all.)\n")

	// Prove the log is behaving like a log: verify an inclusion proof and
	// a consistency proof against the current head.
	size := log.Size()
	if size >= 2 {
		root := log.Root()
		proof, err := log.InclusionProof(size/2, size)
		if err != nil {
			return "", err
		}
		entry := log.Entries()[size/2]
		ok := ctlog.VerifyInclusion(root, ctlog.LeafHash(entry.Cert.Encode()), size/2, size, proof)
		fmt.Fprintf(&b, "inclusion proof for entry %d: verified=%v (path length %d)\n", size/2, ok, len(proof))
		oldRoot, _ := log.RootAt(size / 2)
		cproof, err := log.ConsistencyProof(size/2, size)
		if err != nil {
			return "", err
		}
		okC := ctlog.VerifyConsistency(oldRoot, root, size/2, size, cproof)
		fmt.Fprintf(&b, "consistency proof %d -> %d: verified=%v (path length %d)\n", size/2, size, okC, len(cproof))
	}
	return b.String(), nil
}

func runE2(_ context.Context, s *Study) (string, error) {
	w := certwatch.NewWatcher(s.World.GovHosts)
	matches := w.ScanLog(s.World.CT)
	var b strings.Builder
	b.WriteString("Extension E2: CT-based lookalike monitoring (§7.3.2, §8.2)\n")
	b.WriteString("===========================================================\n")
	fmt.Fprintf(&b, "log entries scanned: %d\n", s.World.CT.Size())
	fmt.Fprintf(&b, "lookalike certificates flagged: %d\n", len(matches))
	byRule := map[string]int{}
	var rules []string
	for _, m := range matches {
		if _, seen := byRule[m.Rule.String()]; !seen {
			rules = append(rules, m.Rule.String())
		}
		byRule[m.Rule.String()]++
	}
	sort.Strings(rules)
	for _, rule := range rules {
		fmt.Fprintf(&b, "  %-20s %d\n", rule, byRule[rule])
	}
	max := 8
	if len(matches) < max {
		max = len(matches)
	}
	b.WriteString("sample findings:\n")
	for _, m := range matches[:max] {
		fmt.Fprintf(&b, "  %-28s imitates %-28s (%s)\n", m.Candidate, m.Target, m.Rule)
	}
	return b.String(), nil
}

func runE3(ctx context.Context, s *Study) (string, error) {
	results := s.Worldwide(ctx)
	hasCAA := func(h string) bool { return len(s.World.DNS.LookupCAA(h)) > 0 }
	findings := recommend.Evaluate(results, hasCAA, recommend.SharedKeyIDs(results))
	out := recommend.Render(recommend.Summarize(findings))
	grouped := recommend.ByCountry(findings, s.CountryOf)
	out += fmt.Sprintf("\ncountries with findings: %d, total findings: %d\n", len(grouped), len(findings))
	return out, nil
}

func runE4(ctx context.Context, s *Study) (string, error) {
	before := longitudinal.Capture(s.World.ScanTime, s.Worldwide(ctx))
	invalid := s.InvalidWorldwideHosts(ctx)
	changed := s.World.Remediate(invalid, world.DefaultRemediationRates(), s.Rand("longitudinal"))
	after := longitudinal.Capture(world.FollowUpScanTime, s.FollowUpScan(ctx, nil))
	s.MarkDatasetDirty("worldwide", changed.ChangedHosts()) // the world changed under the cache

	c := longitudinal.Diff(before, after)
	var b strings.Builder
	b.WriteString("Extension E4: Longitudinal monitoring (§4.2.3 future work)\n")
	b.WriteString("===========================================================\n")
	fmt.Fprintf(&b, "snapshots: %s -> %s\n", before.Taken.Format("2006-01-02"), after.Taken.Format("2006-01-02"))
	fmt.Fprintf(&b, "diff: %s\n", c.Summary())
	gaps := longitudinal.GapReport(after, longitudinal.ValidHTTPS)
	fmt.Fprintf(&b, "hosts still below valid https: %d\n", len(gaps))
	b.WriteString("(regressions are dominated by 90-day certificates lapsing without\n")
	b.WriteString(" renewal between the scans — deterioration the paper could not\n")
	b.WriteString(" measure because it only re-scanned previously invalid hosts.)\n")
	return b.String(), nil
}

func runE5(ctx context.Context, s *Study) (string, error) {
	results := s.Worldwide(ctx)
	var b strings.Builder
	b.WriteString("Extension E5: HSTS preload impact (§8.2, the 2020 DotGov mandate)\n")
	b.WriteString("==================================================================\n")
	eligible := hstspreload.EligibleHosts(results)
	fmt.Fprintf(&b, "hosts meeting the preload submission bar today: %d of %d\n\n", len(eligible), results.Len())
	for _, suffix := range []string{"gov", "go.kr", "gov.cn", "gov.uk"} {
		imp := hstspreload.SimulateImpact(suffix, results)
		if imp.Covered == 0 {
			continue
		}
		fmt.Fprintf(&b, "preload .%-8s covered=%6d  ready=%6d (%.1f%%)  would break=%d\n",
			suffix, imp.Covered, imp.Ready, imp.ReadyPct(), imp.WouldBreak)
	}
	b.WriteString("\n(preloading forces browsers to refuse plain http and invalid https;\n")
	b.WriteString(" the breakage column is the long tail the mandate cuts off until the\n")
	b.WriteString(" certificate fixes of §8 land.)\n")
	return b.String(), nil
}

func runE6(ctx context.Context, s *Study) (string, error) {
	replay := analysis.ReplayReusePolicy(s.Worldwide(ctx))
	var b strings.Builder
	b.WriteString("Extension E6: the §8.1 key-reuse issuance policy, replayed\n")
	b.WriteString("===========================================================\n")
	fmt.Fprintf(&b, "issuance events replayed:        %d\n", replay.Issuances)
	fmt.Fprintf(&b, "refused by the policy:           %d\n", replay.Blocked)
	fmt.Fprintf(&b, "governments with refused events: %d\n", replay.BlockedCountries)
	b.WriteString("(each refusal is a certification of a public key already bound to an\n")
	b.WriteString(" unrelated hostname — the cross-government private-key sharing §5.3.3\n")
	b.WriteString(" warns about. Same-zone wildcard reuse passes the subdomain carve-out.)\n")
	return b.String(), nil
}

// fleetSampleTicks picks every 10th snapshot plus the final one — the
// rows the E7/E8 tables render.
func fleetSampleTicks(n int) []int {
	var out []int
	for i := 0; i < n; i += 10 {
		out = append(out, i)
	}
	if n > 0 && out[len(out)-1] != n-1 {
		out = append(out, n-1)
	}
	return out
}

func runE7(ctx context.Context, s *Study) (string, error) {
	rep, chaos, err := s.FleetReport(ctx)
	if err != nil {
		return "", err
	}
	after, err := s.Dataset(ctx, "acmefleet")
	if err != nil {
		return "", err
	}
	var adopt, fixcert int
	for _, h := range rep.Hosts {
		if h.Reason == recommend.AdoptHTTPS {
			adopt++
		} else {
			fixcert++
		}
	}
	var b strings.Builder
	b.WriteString("Extension E7: automated ACME renewal fleet — adoption curve (§8.1)\n")
	b.WriteString("===================================================================\n")
	fmt.Fprintf(&b, "enrolled: %d misconfigured hosts (adopt-https %d, fix-certificate %d)\n",
		rep.Enrolled, adopt, fixcert)
	fmt.Fprintf(&b, "chaos profile: %d flaky, %d truncating, %d CAA-denied hosts\n",
		len(chaos.Flaky), len(chaos.Truncated), len(chaos.CAADenied))
	b.WriteString("\n  day  renewed  parked  denied  pending  adoption%\n")
	for _, i := range fleetSampleTicks(len(rep.Snapshots)) {
		sn := rep.Snapshots[i]
		fmt.Fprintf(&b, "  %3d  %7d  %6d  %6d  %7d  %8.1f%%\n",
			sn.Tick, sn.Renewed, sn.Parked, sn.Denied, sn.Enrolled,
			100*float64(sn.Renewed)/float64(rep.Enrolled))
	}
	final := rep.Final()
	fmt.Fprintf(&b, "\nfinal adoption: %.1f%% of the enrolled corpus renewed (%d certificate rotations)\n",
		100*float64(final.Renewed)/float64(rep.Enrolled), final.Renewals)
	counts := after.Counts()
	fmt.Fprintf(&b, "post-campaign rescan of the corpus: %d of %d hosts now serve valid https (%.1f%%)\n",
		counts.Valid, after.Len(), 100*float64(counts.Valid)/float64(after.Len()))
	b.WriteString("(the paper's manual disclosure moved single-digit percentages of the\n")
	b.WriteString(" notified population in two months — see S722's Improvement rows; the\n")
	b.WriteString(" automated loop converts everything but the parked/denied long tail.)\n")
	return b.String(), nil
}

func runE8(ctx context.Context, s *Study) (string, error) {
	rep, _, err := s.FleetReport(ctx)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Extension E8: renewal fleet error-class decay (§8.1)\n")
	b.WriteString("=====================================================\n")
	b.WriteString("cumulative order failures by class:\n\n")
	b.WriteString("  day  network  challenge  rate-limited  caa-denied  key-reuse  other\n")
	for _, i := range fleetSampleTicks(len(rep.Snapshots)) {
		sn := rep.Snapshots[i]
		fmt.Fprintf(&b, "  %3d  %7d  %9d  %12d  %10d  %9d  %5d\n",
			sn.Tick,
			sn.Errors[acmefleet.ErrNetwork], sn.Errors[acmefleet.ErrChallenge],
			sn.Errors[acmefleet.ErrRateLimited], sn.Errors[acmefleet.ErrCAA],
			sn.Errors[acmefleet.ErrKeyReuse], sn.Errors[acmefleet.ErrOther])
	}
	mid := rep.Snapshots[len(rep.Snapshots)/2]
	final := rep.Final()
	var early, late int
	for c := acmefleet.ErrClass(1); c < acmefleet.NumErrClasses; c++ {
		early += mid.Errors[c]
		late += final.Errors[c] - mid.Errors[c]
	}
	fmt.Fprintf(&b, "\nfailures in the first half of the campaign: %d, in the second: %d\n", early, late)
	var parked, denied int
	for _, h := range rep.Hosts {
		if h.Terminal {
			switch h.State {
			case acmefleet.FleetParked:
				parked++
			case acmefleet.FleetDenied:
				denied++
			default:
				// Terminal is only ever set alongside Parked or Denied.
			}
		}
	}
	fmt.Fprintf(&b, "terminal long tail: %d hosts parked (probation exhausted), %d denied by policy\n", parked, denied)
	b.WriteString("(transient classes concentrate early and stop accumulating once backoff\n")
	b.WriteString(" and the failure budget absorb them; the terminal classes — CAA and\n")
	b.WriteString(" key-reuse refusals — are flat lines no retry schedule can bend.)\n")
	return b.String(), nil
}
