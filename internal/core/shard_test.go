package core

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/world"
)

// TestShardedExperimentsMatchGolden extends the PR 4 golden-differential
// technique to the sharded scan path: with the study forced onto 1, 2, 4
// and 8 scan shards, the full experiment suite must reproduce the
// committed transcript byte for byte — proving the contiguous partition,
// the concurrent per-shard index builds, and the deterministic set-merge
// change nothing observable. Runs under -race in CI, so the per-shard
// builders are also raced here.
func TestShardedExperimentsMatchGolden(t *testing.T) {
	golden, err := os.ReadFile("../../results/golden_experiments_seed74.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			// Fresh study per shard count: the suite's mutator experiments
			// change the world, so transcripts only compare from a cold start.
			s := MustNewStudy(world.TestConfig())
			s.SetShards(shards)
			ctx := context.Background()
			var b strings.Builder
			for _, e := range Experiments() {
				out, err := e.Run(ctx, s)
				if err != nil {
					t.Fatalf("%s: %v", e.ID, err)
				}
				fmt.Fprintf(&b, "### %s — %s\n\n%s\n", e.ID, e.Title, out)
			}
			if got := b.String(); got != string(golden) {
				diffAt := 0
				for diffAt < len(got) && diffAt < len(golden) && got[diffAt] == golden[diffAt] {
					diffAt++
				}
				t.Fatalf("sharded transcript diverges from golden at byte %d", diffAt)
			}
		})
	}
}
