// Package core orchestrates the full reproduction: it builds the synthetic
// world, runs the scans (worldwide, USA GSA, ROK Government24), and exposes
// an experiment registry with one entry per table and figure of the paper.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"repro/internal/cert"
	"repro/internal/scanner"
	"repro/internal/truststore"
	"repro/internal/verify"
	"repro/internal/world"
)

// Study is a fully built world plus cached scan results.
type Study struct {
	World *world.World

	mu         sync.Mutex
	worldwide  []scanner.Result
	usa        map[string][]scanner.Result
	usaAll     []scanner.Result
	rok        []scanner.Result
	storeInUse string
	journal    *scanner.Journal
	breaker    *scanner.Breaker

	// verifyCache and chainCache persist across every scanner this study
	// builds, so the worldwide, USA and ROK datasets — and repeat scans
	// under different stores — share one pool of verified chain structures
	// and parsed chains. The verify cache keys on the trust store, so no
	// invalidation is needed when UseStore switches.
	verifyCache *verify.Cache
	chainCache  *cert.ChainCache
}

// NewStudy builds the world for the configuration.
func NewStudy(cfg world.Config) (*Study, error) {
	w, err := world.Build(cfg)
	if err != nil {
		return nil, err
	}
	return &Study{
		World:       w,
		usa:         make(map[string][]scanner.Result),
		storeInUse:  "apple",
		verifyCache: verify.NewCache(),
		chainCache:  cert.NewChainCache(),
	}, nil
}

// MustNewStudy is NewStudy for known-valid configurations.
func MustNewStudy(cfg world.Config) *Study {
	s, err := NewStudy(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// UseStore selects the trust store for subsequent scans ("apple",
// "microsoft", "nss") and clears cached results. The paper's default is the
// most restrictive store, Apple's (§4.3).
func (s *Study) UseStore(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.World.Stores[name]; !ok {
		return fmt.Errorf("core: unknown trust store %q", name)
	}
	if s.storeInUse != name {
		s.storeInUse = name
		s.worldwide = nil
		s.usa = make(map[string][]scanner.Result)
		s.usaAll = nil
		s.rok = nil
	}
	return nil
}

// Store returns the active trust store.
func (s *Study) Store() *truststore.Store {
	return s.World.Stores[s.storeInUse]
}

// SetCheckpoint attaches a JSON-lines scan journal at path: every host a
// subsequent scan completes is checkpointed, and — when resume is true —
// hosts already present in the journal are restored without re-scanning,
// so a study run killed mid-scan picks up from the last completed host.
// With resume false any existing journal is discarded and the scan starts
// fresh. One journal covers one dataset run; don't share a path between
// datasets.
func (s *Study) SetCheckpoint(path string, resume bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	if path == "" {
		return nil
	}
	if !resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("core: clearing checkpoint: %w", err)
		}
	}
	j, err := scanner.OpenJournal(path)
	if err != nil {
		return err
	}
	s.journal = j
	return nil
}

// CloseCheckpoint flushes and detaches the checkpoint journal, if any.
func (s *Study) CloseCheckpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// SetBreaker installs a per-provider circuit breaker on subsequent scans
// (nil disables). Breaker decisions depend on the interleaving of
// concurrent failures, so deterministic study runs leave it off.
func (s *Study) SetBreaker(b *scanner.Breaker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.breaker = b
}

// Scanner builds a scanner bound to the study's world and active store.
func (s *Study) Scanner() *scanner.Scanner {
	cfg := scanner.DefaultConfig(s.Store(), s.World.ScanTime)
	cfg.Seed = s.World.Cfg.Seed
	cfg.Clock = s.World.Clock
	cfg.Journal = s.journal
	cfg.Breaker = s.breaker
	cfg.VerifyCache = s.verifyCache
	cfg.ChainCache = s.chainCache
	return scanner.New(s.World.Net, s.World.DNS, s.World.Class, cfg)
}

// CountryOf attributes a hostname to a country.
func (s *Study) CountryOf(hostname string) string { return s.World.CountryOf(hostname) }

// Worldwide scans (once) the worldwide government host list.
func (s *Study) Worldwide(ctx context.Context) []scanner.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.worldwide == nil {
		s.worldwide = s.Scanner().ScanAll(ctx, s.World.GovHosts)
	}
	return s.worldwide
}

// USADataset scans (once) one GSA dataset by key.
func (s *Study) USADataset(ctx context.Context, key string) ([]scanner.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.usa[key]; ok {
		return cached, nil
	}
	ds, ok := s.World.USA.Dataset(key)
	if !ok {
		return nil, fmt.Errorf("core: unknown GSA dataset %q", key)
	}
	res := s.Scanner().ScanAll(ctx, ds.Hosts)
	s.usa[key] = res
	return res, nil
}

// USAAll scans (once) the union of the GSA datasets.
func (s *Study) USAAll(ctx context.Context) []scanner.Result {
	s.mu.Lock()
	if s.usaAll != nil {
		defer s.mu.Unlock()
		return s.usaAll
	}
	s.mu.Unlock()
	res := s.Scanner().ScanAll(ctx, s.World.USA.AllHosts())
	s.mu.Lock()
	s.usaAll = res
	s.mu.Unlock()
	return res
}

// ROK scans (once) the Government24 dataset.
func (s *Study) ROK(ctx context.Context) []scanner.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rok == nil {
		s.rok = s.Scanner().ScanAll(ctx, s.World.ROK.Hosts)
	}
	return s.rok
}

// InvalidWorldwideHosts lists worldwide hostnames measured invalid.
func (s *Study) InvalidWorldwideHosts(ctx context.Context) []string {
	var out []string
	results := s.Worldwide(ctx)
	for i := range results {
		if results[i].Category().IsInvalidHTTPS() {
			out = append(out, results[i].Hostname)
		}
	}
	return out
}

// Rand derives a deterministic source from the study seed and a label.
func (s *Study) Rand(label string) *rand.Rand {
	h := int64(-3750763034362895579)
	for _, b := range []byte(label) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(s.World.Cfg.Seed ^ h))
}

// LinkGraph extracts the world's hyperlink graph for the cross-government
// analysis.
func (s *Study) LinkGraph() map[string][]string {
	links := map[string][]string{}
	for _, h := range s.World.GovHosts {
		if l := s.World.Sites[h].Links; len(l) > 0 {
			links[h] = l
		}
	}
	return links
}
