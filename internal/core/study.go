// Package core orchestrates the full reproduction: it builds the synthetic
// world, runs the scans (worldwide, USA GSA, ROK Government24) through the
// named-dataset registry, and exposes an experiment registry with one entry
// per table and figure of the paper.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/acme"
	"repro/internal/acmefleet"
	"repro/internal/analysis"
	"repro/internal/cert"
	"repro/internal/dataset"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/truststore"
	"repro/internal/verify"
	"repro/internal/world"
)

// RankBins is the bucket count of the Figure 7 rank comparison; the
// worldwide dataset's rank index uses the same framing.
const RankBins = 50

// Study is a fully built world plus the dataset registry that lazily
// scans and indexes each named corpus.
type Study struct {
	World *world.World

	mu         sync.Mutex
	storeInUse string
	journal    *scanner.Journal
	breaker    *scanner.Breaker
	linkGraph  map[string][]string

	// rankCmp memoizes the §5.5 rank comparison Figures 6 and 7 share,
	// keyed by the worldwide snapshot it was computed from — dataset
	// invalidation swaps the Set pointer and so invalidates the memo.
	rankCmpFor *resultset.Set
	rankCmp    analysis.RankComparison

	// datasets memoizes one indexed resultset.Set per named corpus
	// (worldwide, usa:<key>, usa:all, rok); UseStore invalidates every
	// entry atomically.
	datasets *dataset.Registry

	// rankOf maps worldwide hostnames to their Tranco rank for the
	// resultset rank index.
	rankOf map[string]int

	// shards is the explicit shard-count override for full dataset builds
	// (see SetShards); zero defers to the size-based policy.
	shards int

	// fleetReport memoizes the §8.1 renewal-fleet campaign (E7/E8 and the
	// acmefleet dataset all consume one run; the campaign mutates the
	// serving world, so it must not repeat).
	fleetMu     sync.Mutex
	fleetReport *acmefleet.Report
	fleetChaos  acmefleet.ChaosOutcome

	// verifyCache and chainCache persist across every scanner this study
	// builds, so the worldwide, USA and ROK datasets — and repeat scans
	// under different stores — share one pool of verified chain structures
	// and parsed chains. The verify cache keys on the trust store, so no
	// invalidation is needed when UseStore switches.
	verifyCache *verify.Cache
	chainCache  *cert.ChainCache
}

// NewStudy builds the world for the configuration and registers the named
// datasets.
func NewStudy(cfg world.Config) (*Study, error) {
	w, err := world.Build(cfg)
	if err != nil {
		return nil, err
	}
	s := &Study{
		World:       w,
		storeInUse:  "apple",
		verifyCache: verify.NewCache(),
		chainCache:  cert.NewChainCache(),
	}
	s.rankOf = make(map[string]int, len(w.TopLists.TrancoGov))
	for _, rh := range w.TopLists.TrancoGov {
		s.rankOf[rh.Host] = rh.Rank
	}
	s.datasets = dataset.NewRegistry(s.scanDataset)
	s.datasets.SetSharded(s.scanShardedDataset, s.shardPolicy)
	s.datasets.Register(dataset.Source{
		Name:  "worldwide",
		Hosts: func() []string { return s.World.GovHosts },
		Opts:  func() resultset.Options { return s.worldwideOptions() },
	})
	for _, ds := range w.USA.Datasets {
		hosts := ds.Hosts
		s.datasets.Register(dataset.Source{
			Name:  "usa:" + ds.Key,
			Hosts: func() []string { return hosts },
			Opts:  func() resultset.Options { return s.caseStudyOptions() },
		})
	}
	s.datasets.Register(dataset.Source{
		Name:  "usa:all",
		Hosts: func() []string { return s.World.USA.AllHosts() },
		Opts:  func() resultset.Options { return s.caseStudyOptions() },
		Build: func(ctx context.Context) (*resultset.Set, error) { return s.assembleUSAAll(ctx) },
	})
	s.datasets.Register(dataset.Source{
		Name:  "rok",
		Hosts: func() []string { return s.World.ROK.Hosts },
		Opts:  func() resultset.Options { return s.caseStudyOptions() },
	})
	s.datasets.Register(dataset.Source{
		Name:  "acmefleet",
		Hosts: func() []string { return s.fleetHosts() },
		Opts:  func() resultset.Options { return s.caseStudyOptions() },
		Build: func(ctx context.Context) (*resultset.Set, error) { return s.scanFleetCorpus(ctx) },
	})
	return s, nil
}

// worldwideOptions is the index framing of the worldwide corpus: country
// attribution plus the Figure 7 rank buckets.
func (s *Study) worldwideOptions() resultset.Options {
	return resultset.Options{
		CountryOf: s.World.CountryOf,
		RankOf: func(h string) (int, bool) {
			r, ok := s.rankOf[h]
			return r, ok
		},
		RankBuckets: RankBins,
		RankMax:     s.World.TopLists.Max,
	}
}

// caseStudyOptions is the index framing of the USA/ROK corpora: country
// attribution only (their hosts carry no top-million rank).
func (s *Study) caseStudyOptions() resultset.Options {
	return resultset.Options{CountryOf: s.World.CountryOf}
}

// scanDataset is the registry's scan function: probe the hosts with the
// study's current scanner posture, streaming results straight into the
// index builder.
func (s *Study) scanDataset(ctx context.Context, hosts []string, opts resultset.Options) *resultset.Set {
	opts.SizeHint = len(hosts)
	b := resultset.NewBuilder(opts)
	s.Scanner().ScanStream(ctx, hosts, b.Add)
	return b.Build()
}

// scanShardedDataset is the registry's sharded build hook: partition the
// host list, scan each shard into its own index builder, merge
// deterministically (resultset.ScanSharded).
func (s *Study) scanShardedDataset(ctx context.Context, hosts []string, opts resultset.Options, shards int) *resultset.Set {
	return resultset.ScanSharded(ctx, s.Scanner(), hosts, shards, opts)
}

// SetShards fixes the shard count for full dataset builds and follow-up
// scans: n > 1 forces sharded scanning, n == 1 forces the sequential
// path, and n == 0 (the default) lets the size-based policy decide —
// corpora of autoShardHosts hosts or more shard automatically. Call
// before running experiments; the setting is not synchronized against
// in-flight scans. On fault-free worlds any shard count produces
// bit-identical results; under injected flakiness the shard count becomes
// part of the fault draw (same caveat as SuiteOptions.Jobs).
func (s *Study) SetShards(n int) { s.shards = n }

// autoShard* gate the transparent sharding policy: ROADMAP item 3 says a
// worldwide corpus stops fitting one scanner past ~1M hosts; corpora at
// least this large shard automatically, everything smaller stays on the
// sequential path.
const (
	autoShardHosts = 100_000
	autoShardCount = 8
)

// shardPolicy decides how many shards a full build over hostCount hosts
// uses (1 = sequential).
func (s *Study) shardPolicy(hostCount int) int {
	if s.shards != 0 {
		return s.shards
	}
	if hostCount >= autoShardHosts {
		return autoShardCount
	}
	return 1
}

// assembleUSAAll builds the usa:all set from the cached per-key GSA
// datasets instead of rescanning their union: AllHosts() is the sorted
// distinct union of the per-key lists, so every member host is already
// scanned under some key, and per-host results are scan-order independent
// on fault-free worlds — splicing the per-key results in AllHosts() order
// is bit-identical to a direct scan at zero scan cost once the per-key
// tables (TA1/TA2/FA1) are warm. Hosts in several datasets take their
// result from the first registered dataset that lists them.
func (s *Study) assembleUSAAll(ctx context.Context) (*resultset.Set, error) {
	byHost := make(map[string]*scanner.Result)
	for _, ds := range s.World.USA.Datasets {
		set, err := s.USADataset(ctx, ds.Key)
		if err != nil {
			return nil, err
		}
		results := set.Results()
		for i := range results {
			if _, dup := byHost[results[i].Hostname]; !dup {
				byHost[results[i].Hostname] = &results[i]
			}
		}
	}
	hosts := s.World.USA.AllHosts()
	opts := s.caseStudyOptions()
	opts.SizeHint = len(hosts)
	b := resultset.NewBuilder(opts)
	for _, h := range hosts {
		r, ok := byHost[h]
		if !ok {
			return nil, fmt.Errorf("core: usa:all host %q missing from every GSA dataset", h)
		}
		b.Add(*r)
	}
	return b.Build(), nil
}

// MustNewStudy is NewStudy for known-valid configurations.
func MustNewStudy(cfg world.Config) *Study {
	s, err := NewStudy(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// UseStore selects the trust store for subsequent scans ("apple",
// "microsoft", "nss") and invalidates every registered dataset — each
// exactly once, atomically with the switch, so a scan racing the switch
// can never be cached under the wrong store. The paper's default is the
// most restrictive store, Apple's (§4.3).
func (s *Study) UseStore(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.World.Stores[name]; !ok {
		return fmt.Errorf("core: unknown trust store %q", name)
	}
	if s.storeInUse != name {
		s.storeInUse = name
		s.datasets.InvalidateAll()
	}
	return nil
}

// Store returns the active trust store.
func (s *Study) Store() *truststore.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.World.Stores[s.storeInUse]
}

// SetCheckpoint attaches a JSON-lines scan journal at path: every host a
// subsequent scan completes is checkpointed, and — when resume is true —
// hosts already present in the journal are restored without re-scanning,
// so a study run killed mid-scan picks up from the last completed host.
// With resume false any existing journal is discarded and the scan starts
// fresh. One journal covers one dataset run; don't share a path between
// datasets.
func (s *Study) SetCheckpoint(path string, resume bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
	if path == "" {
		return nil
	}
	if !resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("core: clearing checkpoint: %w", err)
		}
	}
	j, err := scanner.OpenJournal(path)
	if err != nil {
		return err
	}
	s.journal = j
	return nil
}

// CloseCheckpoint flushes and detaches the checkpoint journal, if any.
func (s *Study) CloseCheckpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.journal == nil {
		return nil
	}
	err := s.journal.Close()
	s.journal = nil
	return err
}

// SetBreaker installs a per-provider circuit breaker on subsequent scans
// (nil disables). Breaker decisions depend on the interleaving of
// concurrent failures, so deterministic study runs leave it off.
func (s *Study) SetBreaker(b *scanner.Breaker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.breaker = b
}

// Scanner builds a scanner bound to the study's world and current posture
// (store, journal, breaker, shared caches), snapshotted atomically.
func (s *Study) Scanner() *scanner.Scanner {
	s.mu.Lock()
	cfg := scanner.DefaultConfig(s.World.Stores[s.storeInUse], s.World.ScanTime)
	cfg.Journal = s.journal
	cfg.Breaker = s.breaker
	s.mu.Unlock()
	cfg.Seed = s.World.Cfg.Seed
	cfg.Clock = s.World.Clock
	cfg.VerifyCache = s.verifyCache
	cfg.ChainCache = s.chainCache
	return scanner.New(s.World.Net, s.World.DNS, s.World.Class, cfg)
}

// CountryOf attributes a hostname to a country.
func (s *Study) CountryOf(hostname string) string { return s.World.CountryOf(hostname) }

// Dataset returns the named dataset's indexed scan results, scanning
// lazily on first use. Names: "worldwide", "usa:<key>", "usa:all", "rok"
// (see DatasetNames).
func (s *Study) Dataset(ctx context.Context, name string) (*resultset.Set, error) {
	return s.datasets.Get(ctx, name)
}

// DatasetNames lists the registered datasets in registration order.
func (s *Study) DatasetNames() []string { return s.datasets.Names() }

// Registry exposes the dataset registry itself — the serving layer pins
// generations on it directly (dataset.Registry.Pin) so queries keep a
// consistent snapshot while MarkDirty/UseStore churn underneath.
func (s *Study) Registry() *dataset.Registry { return s.datasets }

// InvalidateDataset drops one dataset's cached results, forcing a full
// rescan on next use.
func (s *Study) InvalidateDataset(name string) bool { return s.datasets.Invalidate(name) }

// MarkDatasetDirty records hosts whose cached results are stale after a
// world mutation — the hook the remediation experiments (S722, E4) use.
// The next Get patches the cached set, rescanning only the named hosts
// (plus corpus newcomers) instead of the full corpus; on fault-free
// worlds the patched set is bit-identical to a full rescan.
func (s *Study) MarkDatasetDirty(name string, hosts []string) bool {
	return s.datasets.MarkDirty(name, hosts)
}

// DatasetInvalidations reports how many times the named dataset has been
// invalidated (test hook).
func (s *Study) DatasetInvalidations(name string) int { return s.datasets.Invalidations(name) }

// mustDataset resolves a name registered at construction; a miss is a
// programming error, not a runtime condition.
func (s *Study) mustDataset(ctx context.Context, name string) *resultset.Set {
	set, err := s.datasets.Get(ctx, name)
	if err != nil {
		panic(err)
	}
	return set
}

// Worldwide scans (once) the worldwide government host list.
func (s *Study) Worldwide(ctx context.Context) *resultset.Set {
	return s.mustDataset(ctx, "worldwide")
}

// USADataset scans (once) one GSA dataset by key.
func (s *Study) USADataset(ctx context.Context, key string) (*resultset.Set, error) {
	return s.datasets.Get(ctx, "usa:"+key)
}

// USAAll scans (once) the union of the GSA datasets.
func (s *Study) USAAll(ctx context.Context) *resultset.Set {
	return s.mustDataset(ctx, "usa:all")
}

// ROK scans (once) the Government24 dataset.
func (s *Study) ROK(ctx context.Context) *resultset.Set {
	return s.mustDataset(ctx, "rok")
}

// FollowUpScan re-probes the worldwide host list with a fresh scanner at
// the §7.2.2 follow-up time, streaming into a worldwide-shaped index. The
// result is not cached — it reflects the world as mutated by remediation.
// configure, when non-nil, adjusts the scanner config (journal, seed)
// before the scan.
func (s *Study) FollowUpScan(ctx context.Context, configure func(*scanner.Config)) *resultset.Set {
	cfg := scanner.DefaultConfig(s.Store(), world.FollowUpScanTime)
	// Share the study's verification and chain caches: the follow-up scan
	// revisits the same chains, and cache hits never change results (the
	// cache keys on chain digest + store; hostname and expiry checks stay
	// outside it).
	cfg.VerifyCache = s.verifyCache
	cfg.ChainCache = s.chainCache
	if configure != nil {
		configure(&cfg)
	}
	follow := scanner.New(s.World.Net, s.World.DNS, s.World.Class, cfg)
	opts := s.worldwideOptions()
	if n := s.shardPolicy(len(s.World.GovHosts)); n > 1 {
		return resultset.ScanSharded(ctx, follow, s.World.GovHosts, n, opts)
	}
	opts.SizeHint = len(s.World.GovHosts)
	b := resultset.NewBuilder(opts)
	follow.ScanStream(ctx, s.World.GovHosts, b.Add)
	return b.Build()
}

// RankComparison computes (once per worldwide snapshot) the rank-matched
// government vs non-government comparison Figures 6 and 7 both render.
func (s *Study) RankComparison(ctx context.Context) analysis.RankComparison {
	ww := s.Worldwide(ctx)
	s.mu.Lock()
	if s.rankCmpFor == ww {
		rc := s.rankCmp
		s.mu.Unlock()
		return rc
	}
	s.mu.Unlock()
	rc := analysis.ComputeRankComparison(s.World.TopLists, ww, s.World.Cfg.Seed, RankBins)
	s.mu.Lock()
	s.rankCmpFor, s.rankCmp = ww, rc
	s.mu.Unlock()
	return rc
}

// InvalidWorldwideHosts lists worldwide hostnames measured invalid, in
// scan input order (a read-only view of the dataset index).
func (s *Study) InvalidWorldwideHosts(ctx context.Context) []string {
	return s.Worldwide(ctx).InvalidHosts()
}

// Rand derives a deterministic source from the study seed and a label.
func (s *Study) Rand(label string) *rand.Rand {
	h := int64(-3750763034362895579)
	for _, b := range []byte(label) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(s.World.Cfg.Seed ^ h))
}

// FleetReport runs (once) the §8.1 automated renewal campaign: enroll
// every worldwide host the scan recommends AdoptHTTPS or FixCertificate
// for, subject them to the default chaos profile, and drive http-01
// renewals through the simulated ACME CA until the campaign horizon. The
// campaign mutates the serving world — rotated certificates stay deployed
// — so the result is memoized for the study's lifetime and the worldwide
// dataset is patch-invalidated for exactly the changed hosts. Like S722
// and E4, callers that hold no barrier must not scan concurrently.
func (s *Study) FleetReport(ctx context.Context) (*acmefleet.Report, acmefleet.ChaosOutcome, error) {
	// Resolve the worldwide snapshot before taking the fleet lock:
	// enrollment reads it, and the scan must complete before the campaign
	// starts changing sites underneath the scanner.
	set, err := s.datasets.Get(ctx, "worldwide")
	if err != nil {
		return nil, acmefleet.ChaosOutcome{}, err
	}
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	if s.fleetReport != nil {
		return s.fleetReport, s.fleetChaos, nil
	}
	enrolled := acmefleet.Enroll(set)
	hosts := make([]string, len(enrolled))
	for i, e := range enrolled {
		hosts[i] = e.Hostname
	}
	chaos := acmefleet.DefaultChaos().Apply(s.World, hosts, s.World.Cfg.Seed)
	fleet := acmefleet.New(s.World, set, s.fleetConfig(len(enrolled)))
	rep := fleet.Run(ctx)
	s.MarkDatasetDirty("worldwide", rep.ChangedHosts())
	s.fleetReport, s.fleetChaos = rep, chaos
	return rep, chaos, nil
}

// fleetConfig shapes the study's campaign: Let's Encrypt-style limits — a
// global new-order cap sized so a compliant fleet needs roughly three
// weeks for the corpus (spreading the adoption curve over the horizon)
// plus a per-registered-domain weekly cap. The fleet mirrors the limits
// client-side, so the campaign paces itself instead of harvesting 429s.
func (s *Study) fleetConfig(enrolled int) acmefleet.Config {
	return acmefleet.Config{
		Seed: s.World.Cfg.Seed,
		Limits: acme.RateLimits{
			Global:          enrolled/20 + 5,
			GlobalWindow:    24 * time.Hour,
			PerDomain:       5,
			PerDomainWindow: 7 * 24 * time.Hour,
		},
	}
}

// fleetHosts lists the campaign population (empty before the first
// FleetReport call — the acmefleet dataset's Build hook runs the campaign
// before any scan needs the list).
func (s *Study) fleetHosts() []string {
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	if s.fleetReport == nil {
		return nil
	}
	hosts := make([]string, len(s.fleetReport.Hosts))
	for i := range s.fleetReport.Hosts {
		hosts[i] = s.fleetReport.Hosts[i].Hostname
	}
	return hosts
}

// scanFleetCorpus is the acmefleet dataset's Build hook: run the campaign
// (memoized), then scan exactly the enrolled hosts — the post-campaign
// ground truth E7 verifies adoption against. The scan runs at the
// campaign-end instant, not the study scan time: fleet certificates have
// mid-campaign NotBefore dates and would all be "not yet valid" at the
// original instant.
func (s *Study) scanFleetCorpus(ctx context.Context) (*resultset.Set, error) {
	rep, _, err := s.FleetReport(ctx)
	if err != nil {
		return nil, err
	}
	cfg := scanner.DefaultConfig(s.Store(), rep.Final().Time)
	cfg.Seed = s.World.Cfg.Seed
	cfg.Clock = s.World.Clock
	cfg.VerifyCache = s.verifyCache
	cfg.ChainCache = s.chainCache
	sc := scanner.New(s.World.Net, s.World.DNS, s.World.Class, cfg)
	hosts := s.fleetHosts()
	opts := s.caseStudyOptions()
	opts.SizeHint = len(hosts)
	b := resultset.NewBuilder(opts)
	sc.ScanStream(ctx, hosts, b.Add)
	return b.Build(), nil
}

// LinkGraph extracts the world's hyperlink graph for the cross-government
// analysis. The graph is built once and memoized; each call returns a
// fresh map so callers can add or drop entries without corrupting the
// cache (the link slices are shared and must be treated as read-only).
func (s *Study) LinkGraph() map[string][]string {
	s.mu.Lock()
	if s.linkGraph == nil {
		links := map[string][]string{}
		for _, h := range s.World.GovHosts {
			if l := s.World.Sites[h].Links; len(l) > 0 {
				links[h] = l
			}
		}
		s.linkGraph = links
	}
	cached := s.linkGraph
	s.mu.Unlock()

	out := make(map[string][]string, len(cached))
	for h, l := range cached { //lint:allow maprange defensive map copy; iteration order never escapes — callers receive an unordered map either way
		out[h] = l
	}
	return out
}
