package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/world"
)

var testStudy = MustNewStudy(world.TestConfig())

func TestExperimentRegistryComplete(t *testing.T) {
	exps := Experiments()
	want := []string{
		"T1", "T2",
		"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13",
		"TA1", "TA2", "TA3", "TA4",
		"FA1", "FA2", "FA3", "FA4", "FA5", "FA6",
		"S533", "S534", "S722",
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
	}
	if len(exps) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(want))
	}
	for i, id := range want {
		if exps[i].ID != id {
			t.Errorf("experiment %d = %q, want %q", i, exps[i].ID, id)
		}
		if exps[i].Title == "" || exps[i].Run == nil {
			t.Errorf("experiment %q incomplete", id)
		}
	}
}

func TestRunEveryExperiment(t *testing.T) {
	// One pass over the complete registry: every experiment must produce
	// its artifact's signature content. The world-mutating experiments
	// (S722, E4) run last by registry order.
	wantTokens := map[string][]string{
		"T1":   {"Majestic", "Cisco", "Tranco"},
		"T2":   {"Valid HTTPS Certificates", "Hostname Mismatch"},
		"F1":   {"Country", "HTTPS%"},
		"F2":   {"Let's Encrypt", "Invalid%"},
		"F3":   {"Issued for exactly 10y"},
		"F4":   {"Host public key", "Negotiated protocol versions"},
		"F5":   {"USA validity by hosting", "cloud+CDN share"},
		"F6":   {"Figure 6", "government"},
		"F7":   {"per-bin valid-https rates"},
		"F8":   {"USA certificate validity"},
		"F9":   {"Figure 9"},
		"F10":  {"Figure 10 (USA)", "Figure 10 (ROK)"},
		"F11":  {"CA134100031"},
		"F12":  {"Figure 12"},
		"F13":  {"Population rank band", "Supportive responses"},
		"TA1":  {"Govt. State Only Domains", "End of Term 2016 Snapshot"},
		"TA2":  {"DOT .MIL"},
		"TA3":  {"South Korea Domains Set"},
		"TA4":  {"South Korean"},
		"FA1":  {"Censys Federal Snapshot"},
		"FA2":  {"EV certificate usage"},
		"FA3":  {"Top EV CAs for ROK"},
		"FA4":  {"Level", "Growth%"},
		"FA5":  {"Top linker"},
		"FA6":  {"Top EV CAs worldwide"},
		"S533": {"Certificates shared by"},
		"S534": {"CAA"},
		"S722": {"Improvement (conservative)"},
		"E1":   {"inclusion proof", "consistency proof"},
		"E2":   {"lookalike certificates flagged"},
		"E3":   {"adopt-https"},
		"E4":   {"diff: improved"},
		"E5":   {"preload"},
		"E6":   {"refused by the policy"},
		"E7":   {"final adoption", "post-campaign rescan"},
		"E8":   {"error-class decay", "terminal long tail"},
	}
	ctx := context.Background()
	for _, e := range Experiments() {
		out, err := e.Run(ctx, testStudy)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(out) < 40 {
			t.Errorf("%s: output suspiciously short: %q", e.ID, out)
		}
		tokens, ok := wantTokens[e.ID]
		if !ok {
			t.Errorf("%s: experiment missing from the expectation table", e.ID)
			continue
		}
		for _, tok := range tokens {
			if !strings.Contains(out, tok) {
				t.Errorf("%s: output missing %q", e.ID, tok)
			}
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment(context.Background(), testStudy, "Z999"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentCaseInsensitive(t *testing.T) {
	out, err := RunExperiment(context.Background(), testStudy, "t1")
	if err != nil || !strings.Contains(out, "Majestic") {
		t.Fatalf("t1: %v", err)
	}
}

func TestUseStore(t *testing.T) {
	s := MustNewStudy(world.Config{Seed: 3, Scale: 0.005})
	if err := s.UseStore("nss"); err != nil {
		t.Fatal(err)
	}
	if s.Store().Name() != "nss" {
		t.Errorf("store = %q", s.Store().Name())
	}
	if err := s.UseStore("bogus"); err == nil {
		t.Fatal("bogus store accepted")
	}
}

func TestStoreAblation(t *testing.T) {
	// The conservative Apple store marks at least as many hosts invalid
	// as the permissive Microsoft store (§4.3): with our modeled CA set
	// the counts match or Apple is stricter.
	ctx := context.Background()
	s := MustNewStudy(world.Config{Seed: 4, Scale: 0.01})
	apple := len(s.InvalidWorldwideHosts(ctx))
	if err := s.UseStore("microsoft"); err != nil {
		t.Fatal(err)
	}
	microsoft := len(s.InvalidWorldwideHosts(ctx))
	if apple < microsoft {
		t.Errorf("apple store invalid=%d < microsoft invalid=%d", apple, microsoft)
	}
}

func TestScanCachesReused(t *testing.T) {
	ctx := context.Background()
	s := MustNewStudy(world.Config{Seed: 5, Scale: 0.005})
	before := s.World.Net.DialCount()
	s.Worldwide(ctx)
	mid := s.World.Net.DialCount()
	s.Worldwide(ctx)
	after := s.World.Net.DialCount()
	if mid == before {
		t.Fatal("first scan made no dials")
	}
	if after != mid {
		t.Error("cached scan re-dialed the network")
	}
}

func TestRandDeterministic(t *testing.T) {
	a := testStudy.Rand("x").Int63()
	b := testStudy.Rand("x").Int63()
	c := testStudy.Rand("y").Int63()
	if a != b {
		t.Error("same label produced different streams")
	}
	if a == c {
		t.Error("different labels produced the same stream")
	}
}
