package core

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"repro/internal/world"
)

// TestDatasetNamesCoverCorpora: the registry carries the paper's full
// dataset vocabulary.
func TestDatasetNamesCoverCorpora(t *testing.T) {
	s := MustNewStudy(world.TestConfig())
	names := s.DatasetNames()
	if names[0] != "worldwide" {
		t.Errorf("first dataset = %q, want worldwide", names[0])
	}
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	if !got["usa:all"] || !got["rok"] {
		t.Fatalf("registry missing case-study corpora: %v", names)
	}
	for _, ds := range s.World.USA.Datasets {
		if !got["usa:"+ds.Key] {
			t.Errorf("GSA dataset %q not registered", ds.Key)
		}
	}
	if _, err := s.Dataset(context.Background(), "atlantis"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// TestUseStoreInvalidatesEveryDatasetOnce: a trust-store switch drops
// every dataset exactly once; a no-op switch drops nothing.
func TestUseStoreInvalidatesEveryDatasetOnce(t *testing.T) {
	s := MustNewStudy(world.TestConfig())
	ctx := context.Background()
	s.Worldwide(ctx)
	s.ROK(ctx)

	if err := s.UseStore("apple"); err != nil {
		t.Fatal(err)
	}
	for _, name := range s.DatasetNames() {
		if got := s.DatasetInvalidations(name); got != 0 {
			t.Errorf("no-op store switch invalidated %q %d times", name, got)
		}
	}

	if err := s.UseStore("nss"); err != nil {
		t.Fatal(err)
	}
	for _, name := range s.DatasetNames() {
		if got := s.DatasetInvalidations(name); got != 1 {
			t.Errorf("dataset %q invalidated %d times after one switch, want exactly 1", name, got)
		}
	}
	if err := s.UseStore("bogus"); err == nil {
		t.Error("unknown store accepted")
	}
}

// TestStoreSwitchRescansBitIdentical: switching stores away and back
// re-scans, and the rescan under the original store reproduces the first
// scan bit for bit.
func TestStoreSwitchRescansBitIdentical(t *testing.T) {
	s := MustNewStudy(world.TestConfig())
	ctx := context.Background()

	first := s.Worldwide(ctx)
	if err := s.UseStore("microsoft"); err != nil {
		t.Fatal(err)
	}
	other := s.Worldwide(ctx)
	if other == first {
		t.Fatal("store switch did not rescan")
	}
	if err := s.UseStore("apple"); err != nil {
		t.Fatal(err)
	}
	again := s.Worldwide(ctx)
	if again == first {
		t.Fatal("rescan returned the invalidated set")
	}

	if again.Len() != first.Len() {
		t.Fatalf("rescan %d results, want %d", again.Len(), first.Len())
	}
	for i := 0; i < first.Len(); i++ {
		a, b := first.At(i), again.At(i)
		if a.Hostname != b.Hostname || a.Category() != b.Category() ||
			a.Exception != b.Exception || a.HSTS != b.HSTS || a.Attempts != b.Attempts {
			t.Fatalf("host %d (%q) differs across same-store re-scans", i, a.Hostname)
		}
	}
	if first.Counts() != again.Counts() {
		t.Errorf("counts diverge: %+v vs %+v", first.Counts(), again.Counts())
	}
}

// TestDatasetRaceUnderStoreSwitches hammers Get and UseStore from 64
// goroutines; with -race this is the study cache's soundness proof.
func TestDatasetRaceUnderStoreSwitches(t *testing.T) {
	if testing.Short() {
		t.Skip("scan-heavy")
	}
	cfg := world.TestConfig()
	cfg.Scale = cfg.Scale / 4
	s := MustNewStudy(cfg)
	ctx := context.Background()
	names := s.DatasetNames()
	stores := []string{"apple", "microsoft", "nss"}

	var wg sync.WaitGroup
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if g%8 == 0 {
					if err := s.UseStore(stores[(g+i)%len(stores)]); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				set, err := s.Dataset(ctx, names[(g+i)%len(names)])
				if err != nil {
					t.Error(err)
					return
				}
				if set.Len() == 0 {
					t.Error("empty dataset")
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if err := s.UseStore("apple"); err != nil {
		t.Fatal(err)
	}
	if s.Worldwide(ctx).Len() != len(s.World.GovHosts) {
		t.Error("worldwide dataset corrupted by concurrent switches")
	}
}

// TestExperimentsMatchGolden is the refactor's differential proof: every
// experiment, regenerated through the dataset registry and the indexed
// result sets, must be byte-identical to the committed pre-refactor golden
// transcript at the same seed.
func TestExperimentsMatchGolden(t *testing.T) {
	s := MustNewStudy(world.TestConfig())
	ctx := context.Background()
	var b strings.Builder
	for _, e := range Experiments() {
		out, err := e.Run(ctx, s)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Fprintf(&b, "### %s — %s\n\n%s\n", e.ID, e.Title, out)
	}

	const goldenPath = "../../results/golden_experiments_seed74.txt"
	if os.Getenv("GOVHTTPS_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Skipf("golden transcript rewritten (%d bytes)", b.Len())
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}

	if got := b.String(); got != string(golden) {
		diffAt := 0
		for diffAt < len(got) && diffAt < len(golden) && got[diffAt] == golden[diffAt] {
			diffAt++
		}
		lo := diffAt - 200
		if lo < 0 {
			lo = 0
		}
		hiG, hiW := diffAt+200, diffAt+200
		if hiG > len(got) {
			hiG = len(got)
		}
		if hiW > len(golden) {
			hiW = len(golden)
		}
		t.Fatalf("experiment transcript diverges from golden at byte %d:\n--- got ---\n%s\n--- want ---\n%s",
			diffAt, got[lo:hiG], golden[lo:hiW])
	}
}
