package core

import (
	"context"
	"os"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/world"
)

// suiteTranscript renders a full suite the way govreport -all does.
// ForceParallel keeps jobs>1 runs on the concurrent scheduler even on a
// single-CPU host, where the effective-parallelism policy would
// otherwise silently fall back to the sequential loop and the
// differential proof would compare the loop against itself.
func suiteTranscript(t *testing.T, jobs int) string {
	t.Helper()
	s := MustNewStudy(world.TestConfig())
	results, err := RunAllExperiments(context.Background(), s, SuiteOptions{Jobs: jobs, ForceParallel: jobs != 1})
	if err != nil {
		t.Fatalf("jobs=%d: %v", jobs, err)
	}
	var b strings.Builder
	for _, r := range results {
		if err := report.WriteArtifact(&b, r.ID, r.Title, r.Output); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestSchedulerMatchesSequential is the scheduler's differential proof: the
// full suite run through the parallel scheduler must be byte-identical to
// the sequential loop, and both must match the committed golden transcript.
func TestSchedulerMatchesSequential(t *testing.T) {
	golden, err := os.ReadFile("../../results/golden_experiments_seed74.txt")
	if err != nil {
		t.Fatal(err)
	}
	sequential := suiteTranscript(t, 1)
	if sequential != string(golden) {
		t.Fatal("sequential suite diverges from golden transcript")
	}
	for _, jobs := range []int{0, 2, 8} {
		if got := suiteTranscript(t, jobs); got != sequential {
			diffAt := 0
			for diffAt < len(got) && diffAt < len(sequential) && got[diffAt] == sequential[diffAt] {
				diffAt++
			}
			t.Fatalf("jobs=%d diverges from sequential at byte %d", jobs, diffAt)
		}
	}
}

// TestSchedulerColdRegistryRace drives the scheduler at aggressive
// concurrency against a study whose dataset registry has never been
// touched, so dataset warming, experiment execution and the single-flight
// registry all contend at once. Run under -race in CI.
func TestSchedulerColdRegistryRace(t *testing.T) {
	s := MustNewStudy(world.TestConfig())
	results, err := RunAllExperiments(context.Background(), s, SuiteOptions{Jobs: 16, ForceParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	exps := Experiments()
	if len(results) != len(exps) {
		t.Fatalf("results = %d, want %d", len(results), len(exps))
	}
	for i := range results {
		if results[i].ID != exps[i].ID {
			t.Fatalf("result %d = %s, want %s (registry order)", i, results[i].ID, exps[i].ID)
		}
	}
}

// TestSchedulerCancellation checks a cancelled context aborts the suite
// with an error instead of hanging the worker pool.
func TestSchedulerCancellation(t *testing.T) {
	s := MustNewStudy(world.TestConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAllExperiments(ctx, s, SuiteOptions{Jobs: 4, ForceParallel: true}); err == nil {
		t.Fatal("cancelled suite returned no error")
	}
}

// TestLookupExperiment covers the lazily-built case-insensitive ID index.
func TestLookupExperiment(t *testing.T) {
	for _, id := range []string{"T2", "t2", "fa6", "S722", "e4"} {
		e, ok := LookupExperiment(id)
		if !ok {
			t.Fatalf("LookupExperiment(%q) missed", id)
		}
		if !strings.EqualFold(e.ID, id) {
			t.Fatalf("LookupExperiment(%q) = %s", id, e.ID)
		}
	}
	if _, ok := LookupExperiment("nope"); ok {
		t.Fatal("unknown ID resolved")
	}
}
