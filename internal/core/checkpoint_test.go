package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/world"
)

// TestStudyCheckpointResume: a second study resuming from the first
// study's journal restores every host without a single network dial and
// reproduces the scan exactly.
func TestStudyCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "worldwide.jsonl")

	s1 := MustNewStudy(world.TestConfig())
	if err := s1.SetCheckpoint(path, false); err != nil {
		t.Fatal(err)
	}
	full := s1.Worldwide(context.Background())
	if err := s1.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}

	s2 := MustNewStudy(world.TestConfig())
	if err := s2.SetCheckpoint(path, true); err != nil {
		t.Fatal(err)
	}
	before := s2.World.Net.DialCount()
	resumed := s2.Worldwide(context.Background())
	if err := s2.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if d := s2.World.Net.DialCount() - before; d != 0 {
		t.Errorf("resume made %d dials, want 0 (everything journaled)", d)
	}
	if resumed.Len() != full.Len() {
		t.Fatalf("resumed %d results, want %d", resumed.Len(), full.Len())
	}
	for i := 0; i < resumed.Len(); i++ {
		if resumed.At(i).Hostname != full.At(i).Hostname || resumed.At(i).Category() != full.At(i).Category() {
			t.Errorf("host %d: resumed %q/%v, original %q/%v", i,
				resumed.At(i).Hostname, resumed.At(i).Category(),
				full.At(i).Hostname, full.At(i).Category())
		}
	}
}

// TestStudyCheckpointFresh: resume=false discards a stale journal instead
// of silently reusing results from another run.
func TestStudyCheckpointFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stale.jsonl")
	if err := os.WriteFile(path, []byte(`{"hostname":"stale.gov.zz","available":true}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := MustNewStudy(world.TestConfig())
	if err := s.SetCheckpoint(path, false); err != nil {
		t.Fatal(err)
	}
	defer s.CloseCheckpoint()
	rs := s.Scanner().ScanAll(context.Background(), []string{"stale.gov.zz"})
	if rs[0].Available || !rs[0].DNSError {
		t.Errorf("stale journal entry influenced a fresh scan: %+v", rs[0])
	}
}
