package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// SuiteOptions configures RunAllExperiments.
type SuiteOptions struct {
	// Jobs bounds the worker pool running independent experiments and the
	// concurrent dataset pre-warm. Zero means GOMAXPROCS; one (or less)
	// runs the plain sequential loop.
	//
	// Determinism: rendered output is assembled strictly in registry
	// order, so for fault-free worlds (Flakiness 0 — the golden-file
	// configuration) any Jobs value produces byte-identical output. Under
	// injected flakiness the simnet's per-endpoint dial ordinals depend on
	// scan interleaving, so reproducible flaky runs need Jobs <= 1.
	//
	// Effective parallelism: on a single-CPU host (GOMAXPROCS==1) the
	// concurrent scheduler can only lose to the sequential loop it
	// replaced — goroutine switches and pool coordination buy nothing
	// when there is one runner — so any Jobs value falls back to the
	// sequential path there unless ForceParallel is set.
	Jobs int
	// ForceParallel runs the concurrent scheduler even where the
	// effective-parallelism policy would fall back to the sequential
	// loop. Tests use it to exercise the pool on single-CPU CI; the
	// benchmark uses it to record the forced-parallel number honestly
	// next to the policy number.
	ForceParallel bool
	// Shards, when non-zero, fixes the shard count for full dataset
	// builds before the suite starts (see Study.SetShards): > 1 forces
	// sharded scanning, 1 forces the sequential path. Fault-free worlds
	// produce byte-identical output at any shard count; the flaky-world
	// caveat above applies to shards exactly as it does to Jobs.
	Shards int
}

// SuiteResult is one experiment's rendered artifact.
type SuiteResult struct {
	ID     string
	Title  string
	Output string
}

// RunAllExperiments runs the full registry and returns the artifacts in
// registry order. Independent experiments run concurrently on a bounded
// worker pool after their declared datasets are pre-warmed through the
// single-flight registry; world-mutating experiments (S722, E4) run alone
// as barriers. The first error, in registry order, aborts the suite:
// experiments past the failed one's segment never start (matching the
// sequential loop's fail-fast), and the successfully rendered prefix is
// returned alongside the error.
func RunAllExperiments(ctx context.Context, s *Study, opts SuiteOptions) ([]SuiteResult, error) {
	if opts.Shards != 0 {
		s.SetShards(opts.Shards)
	}
	jobs := opts.Jobs
	if jobs == 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	// Effective-parallelism policy: with a single CPU the pool cannot
	// beat the sequential loop (BENCH_scan.json's report_suite section
	// measured 0.88x on the 1-core CI host), so don't pretend otherwise.
	if runtime.GOMAXPROCS(0) == 1 && !opts.ForceParallel {
		jobs = 1
	}
	exps, _ := registry()
	results := make([]SuiteResult, 0, len(exps))

	if jobs <= 1 {
		for i := range exps {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			out, err := exps[i].Run(ctx, s)
			if err != nil {
				return results, fmt.Errorf("%s: %w", exps[i].ID, err)
			}
			results = append(results, SuiteResult{ID: exps[i].ID, Title: exps[i].Title, Output: out})
		}
		return results, nil
	}

	// Split the registry into segments at the world mutators: a mutator is
	// a one-experiment segment, everything between mutators runs as one
	// concurrent batch.
	for lo := 0; lo < len(exps); {
		if err := ctx.Err(); err != nil {
			return results, err
		}
		hi := lo
		if exps[lo].MutatesWorld {
			hi = lo + 1
		} else {
			for hi < len(exps) && !exps[hi].MutatesWorld {
				hi++
			}
		}
		seg := exps[lo:hi]
		if err := s.warmDatasets(ctx, seg, jobs); err != nil {
			return results, err
		}
		outputs := make([]string, len(seg))
		errs := make([]error, len(seg))
		runSegment(ctx, s, seg, jobs, outputs, errs)
		for i := range seg {
			if errs[i] != nil {
				return results, fmt.Errorf("%s: %w", seg[i].ID, errs[i])
			}
			results = append(results, SuiteResult{ID: seg[i].ID, Title: seg[i].Title, Output: outputs[i]})
		}
		lo = hi
	}
	return results, nil
}

// runSegment executes one segment's experiments on a bounded pool,
// writing each artifact into its registry slot.
func runSegment(ctx context.Context, s *Study, seg []Experiment, jobs int, outputs []string, errs []error) {
	if len(seg) == 1 {
		outputs[0], errs[0] = seg[0].Run(ctx, s)
		return
	}
	if jobs > len(seg) {
		jobs = len(seg)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				outputs[i], errs[i] = seg[i].Run(ctx, s)
			}
		}()
	}
	for i := range seg {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// warmDatasets resolves the distinct datasets a segment declares and
// warms the warmable ones concurrently (bounded by jobs) through the
// single-flight registry, so the segment's experiments start against hot
// caches instead of serializing on first-use scans. The warm phase
// completes before any experiment starts: sharing one pool between warm
// tasks and the experiments waiting on them could deadlock.
func (s *Study) warmDatasets(ctx context.Context, seg []Experiment, jobs int) error {
	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for i := range seg {
		for _, n := range seg[i].Datasets {
			switch n {
			case "usa:*":
				for _, ds := range s.World.USA.Datasets {
					add("usa:" + ds.Key)
				}
			case "crawl", "ct":
				// Not warmable: the crawl is the experiment's own measured
				// workload and the CT log is built with the world.
			default:
				add(n)
			}
		}
	}
	if len(names) == 0 {
		return nil
	}
	if jobs > len(names) {
		jobs = len(names)
	}
	errs := make([]error, len(names))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if names[i] == "linkgraph" {
					s.LinkGraph()
					continue
				}
				_, errs[i] = s.datasets.Get(ctx, names[i])
			}
		}()
	}
	for i := range names {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("warming %s: %w", names[i], err)
		}
	}
	return nil
}
