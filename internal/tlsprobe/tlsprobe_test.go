package tlsprobe

import (
	"crypto/tls"
	"crypto/x509"
	"testing"
	"time"
)

func now() time.Time { return time.Now() }

func serve(t *testing.T, cert tls.Certificate) string {
	t.Helper()
	addr, stop, err := Server(cert)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	return addr
}

func TestProbeValidChain(t *testing.T) {
	ca, err := NewCA("Probe Root")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.Issue([]string{"www.agency.gov"}, now().Add(-time.Hour), now().AddDate(0, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	addr := serve(t, cert)
	res := Probe(addr, "www.agency.gov", ca.Pool, now())
	if !res.Valid() {
		t.Fatalf("probe = %v (%v)", res.Code, res.Err)
	}
	if len(res.Chain) != 2 {
		t.Errorf("chain length = %d", len(res.Chain))
	}
	if res.Version < tls.VersionTLS12 {
		t.Errorf("negotiated old TLS: %x", res.Version)
	}
}

func TestProbeHostnameMismatch(t *testing.T) {
	ca, _ := NewCA("Probe Root")
	cert, _ := ca.Issue([]string{"other.agency.gov"}, now().Add(-time.Hour), now().AddDate(0, 3, 0))
	addr := serve(t, cert)
	res := Probe(addr, "www.agency.gov", ca.Pool, now())
	if res.Code != HostnameMismatch {
		t.Fatalf("probe = %v (%v), want hostname mismatch", res.Code, res.Err)
	}
	if len(res.Chain) == 0 {
		t.Error("chain not retrieved despite invalid name")
	}
}

func TestProbeWildcardSemantics(t *testing.T) {
	// Real x509 wildcard matching must agree with the simulated
	// verifier's: one label only (the §5.3.3 Bangladesh misuse fails).
	ca, _ := NewCA("Probe Root")
	cert, _ := ca.Issue([]string{"*.portal.gov.bd"}, now().Add(-time.Hour), now().AddDate(0, 3, 0))
	addr := serve(t, cert)
	if res := Probe(addr, "forms.portal.gov.bd", ca.Pool, now()); !res.Valid() {
		t.Errorf("in-zone wildcard = %v (%v)", res.Code, res.Err)
	}
	if res := Probe(addr, "dhaka.gov.bd", ca.Pool, now()); res.Code != HostnameMismatch {
		t.Errorf("out-of-zone wildcard = %v, want mismatch", res.Code)
	}
	if res := Probe(addr, "a.b.portal.gov.bd", ca.Pool, now()); res.Code != HostnameMismatch {
		t.Errorf("two-label wildcard = %v, want mismatch", res.Code)
	}
}

func TestProbeExpired(t *testing.T) {
	ca, _ := NewCA("Probe Root")
	cert, _ := ca.Issue([]string{"www.agency.gov"}, now().AddDate(-2, 0, 0), now().AddDate(-1, 0, 0))
	addr := serve(t, cert)
	res := Probe(addr, "www.agency.gov", ca.Pool, now())
	if res.Code != Expired {
		t.Fatalf("probe = %v (%v), want expired", res.Code, res.Err)
	}
}

func TestProbeNotYetValid(t *testing.T) {
	ca, _ := NewCA("Probe Root")
	cert, _ := ca.Issue([]string{"www.agency.gov"}, now().AddDate(1, 0, 0), now().AddDate(2, 0, 0))
	addr := serve(t, cert)
	res := Probe(addr, "www.agency.gov", ca.Pool, now())
	if res.Code != NotYetValid && res.Code != Expired {
		t.Fatalf("probe = %v (%v), want not-yet-valid", res.Code, res.Err)
	}
}

func TestProbeUnknownAuthority(t *testing.T) {
	ca, _ := NewCA("Probe Root")
	other, _ := NewCA("Unrelated Root")
	cert, _ := ca.Issue([]string{"www.agency.gov"}, now().Add(-time.Hour), now().AddDate(0, 3, 0))
	addr := serve(t, cert)
	res := Probe(addr, "www.agency.gov", other.Pool, now())
	if res.Code != UnknownAuthority {
		t.Fatalf("probe = %v (%v), want unknown authority", res.Code, res.Err)
	}
}

func TestProbeSelfSigned(t *testing.T) {
	ca, _ := NewCA("Probe Root")
	cert, err := SelfSigned([]string{"localhost"}, now().Add(-time.Hour), now().AddDate(1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	addr := serve(t, cert)
	res := Probe(addr, "localhost", ca.Pool, now())
	// Self-signed leaves surface as unknown authority under x509, the
	// analogue of OpenSSL error 18/20.
	if res.Code != UnknownAuthority {
		t.Fatalf("probe = %v (%v), want unknown authority", res.Code, res.Err)
	}
	if len(res.Chain) != 1 {
		t.Errorf("chain = %d certs", len(res.Chain))
	}
}

func TestProbeConnectFailure(t *testing.T) {
	ca, _ := NewCA("Probe Root")
	res := Probe("127.0.0.1:1", "x.gov", ca.Pool, now())
	if res.Valid() {
		t.Fatal("probe of closed port succeeded")
	}
}

func TestCodeStrings(t *testing.T) {
	if OK.String() != "ok" {
		t.Errorf("OK = %q", OK.String())
	}
	if UnknownAuthority.String() != "unable to get local issuer certificate" {
		t.Errorf("UnknownAuthority = %q", UnknownAuthority.String())
	}
}

func TestServerStopIdempotentEnough(t *testing.T) {
	ca, _ := NewCA("Probe Root")
	cert, _ := ca.Issue([]string{"x.gov"}, now().Add(-time.Hour), now().AddDate(0, 1, 0))
	addr, stop, err := Server(cert)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	// A probe after stop fails at connect.
	res := Probe(addr, "x.gov", ca.Pool, now())
	if res.Valid() {
		t.Fatal("probe succeeded after server stop")
	}
}

func TestValidateDirectly(t *testing.T) {
	caRoot, _ := NewCA("Probe Root")
	leafTLS, _ := caRoot.Issue([]string{"y.gov"}, now().Add(-time.Hour), now().AddDate(0, 1, 0))
	leaf, err := x509.ParseCertificate(leafTLS.Certificate[0])
	if err != nil {
		t.Fatal(err)
	}
	code, verr := Validate([]*x509.Certificate{leaf, caRoot.Cert}, "y.gov", caRoot.Pool, now())
	if code != OK || verr != nil {
		t.Fatalf("Validate = %v, %v", code, verr)
	}
	code, _ = Validate([]*x509.Certificate{leaf, caRoot.Cert}, "z.gov", caRoot.Pool, now())
	if code != HostnameMismatch {
		t.Fatalf("Validate wrong host = %v", code)
	}
}
