// Package tlsprobe validates the study's scanning methodology against
// genuine TLS: it mints real X.509 certificates (crypto/x509), serves them
// over real crypto/tls listeners, performs full handshakes, retrieves peer
// certificate chains, and classifies validation failures into the same
// taxonomy the simulated pipeline uses. It is the bridge proving that the
// measurement code paths exercised by the simulation correspond to real
// TLS behaviour.
package tlsprobe

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"math/big"
	"net"
	"time"
)

// Code mirrors the verify package's primary outcomes for real chains.
type Code int

// Probe outcomes.
const (
	OK Code = iota
	HostnameMismatch
	UnknownAuthority
	Expired
	NotYetValid
	HandshakeFailed
	ConnectFailed
)

var codeNames = map[Code]string{
	OK:               "ok",
	HostnameMismatch: "hostname mismatch",
	UnknownAuthority: "unable to get local issuer certificate",
	Expired:          "certificate has expired",
	NotYetValid:      "certificate is not yet valid",
	HandshakeFailed:  "handshake failed",
	ConnectFailed:    "connect failed",
}

// String names the outcome.
func (c Code) String() string { return codeNames[c] }

// Result is one probe outcome.
type Result struct {
	Code Code
	// Chain is the peer chain retrieved during the handshake (leaf first),
	// also populated when validation fails.
	Chain []*x509.Certificate
	// Version is the negotiated TLS version.
	Version uint16
	// Err is the underlying error for non-OK results.
	Err error
}

// Valid reports a fully validated connection.
func (r Result) Valid() bool { return r.Code == OK }

// Probe connects to addr, handshakes with SNI serverName, retrieves the
// chain without trusting it, then validates against roots — the same
// retrieve-then-validate split the paper's pipeline uses (§4.3).
func Probe(addr, serverName string, roots *x509.CertPool, at time.Time) Result {
	conn, err := tls.Dial("tcp", addr, &tls.Config{
		ServerName: serverName,
		// Retrieval must succeed even for broken chains; validation
		// happens explicitly below, like running openssl verify on a
		// downloaded chain.
		InsecureSkipVerify: true,
		MinVersion:         tls.VersionTLS12,
	})
	if err != nil {
		var nerr net.Error
		if errors.As(err, &nerr) || errors.Is(err, errors.ErrUnsupported) {
			return Result{Code: ConnectFailed, Err: err}
		}
		return Result{Code: HandshakeFailed, Err: err}
	}
	defer conn.Close()
	state := conn.ConnectionState()
	chain := state.PeerCertificates
	res := Result{Chain: chain, Version: state.Version}
	if len(chain) == 0 {
		res.Code = HandshakeFailed
		res.Err = errors.New("tlsprobe: no peer certificates")
		return res
	}
	res.Code, res.Err = Validate(chain, serverName, roots, at)
	return res
}

// Validate runs chain validation with OpenSSL-style error mapping.
func Validate(chain []*x509.Certificate, serverName string, roots *x509.CertPool, at time.Time) (Code, error) {
	leaf := chain[0]
	inter := x509.NewCertPool()
	for _, c := range chain[1:] {
		inter.AddCert(c)
	}
	_, err := leaf.Verify(x509.VerifyOptions{
		DNSName:       serverName,
		Roots:         roots,
		Intermediates: inter,
		CurrentTime:   at,
	})
	if err == nil {
		return OK, nil
	}
	var hostErr x509.HostnameError
	var invErr x509.CertificateInvalidError
	var authErr x509.UnknownAuthorityError
	switch {
	case errors.As(err, &hostErr):
		return HostnameMismatch, err
	case errors.As(err, &invErr):
		switch invErr.Reason {
		case x509.Expired:
			if at.Before(leaf.NotBefore) {
				return NotYetValid, err
			}
			return Expired, err
		}
		return HandshakeFailed, err
	case errors.As(err, &authErr):
		return UnknownAuthority, err
	default:
		return HandshakeFailed, err
	}
}

// CA is a real certificate authority for tests and examples.
type CA struct {
	Cert *x509.Certificate
	Key  *ecdsa.PrivateKey
	// Pool contains just this CA, for Probe's roots argument.
	Pool *x509.CertPool
}

// NewCA mints a self-signed ECDSA root.
func NewCA(name string) (*CA, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: name, Organization: []string{"govhttps test trust"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().AddDate(10, 0, 0),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, err
	}
	certParsed, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(certParsed)
	return &CA{Cert: certParsed, Key: key, Pool: pool}, nil
}

// Issue mints a leaf certificate for the hostnames with the given window.
func (ca *CA) Issue(hostnames []string, notBefore, notAfter time.Time) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, err
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(time.Now().UnixNano()),
		Subject:      pkix.Name{CommonName: first(hostnames)},
		DNSNames:     hostnames,
		NotBefore:    notBefore,
		NotAfter:     notAfter,
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cert, &key.PublicKey, ca.Key)
	if err != nil {
		return tls.Certificate{}, err
	}
	return tls.Certificate{
		Certificate: [][]byte{der, ca.Cert.Raw},
		PrivateKey:  key,
	}, nil
}

// SelfSigned mints a self-signed leaf outside any CA.
func SelfSigned(hostnames []string, notBefore, notAfter time.Time) (tls.Certificate, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, err
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(time.Now().UnixNano()),
		Subject:               pkix.Name{CommonName: first(hostnames)},
		DNSNames:              hostnames,
		NotBefore:             notBefore,
		NotAfter:              notAfter,
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, err
	}
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key}, nil
}

// Server runs a real TLS server on a loopback listener, serving the given
// certificate. It returns the address and a stop function.
func Server(cert tls.Certificate) (addr string, stop func(), err error) {
	ln, err := tls.Listen("tcp", "127.0.0.1:0", &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	})
	if err != nil {
		return "", nil, fmt.Errorf("tlsprobe: listen: %w", err)
	}
	done := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-done:
					return
				default:
					return
				}
			}
			go func(c net.Conn) {
				// Drive the handshake; the probe needs nothing more.
				if tc, ok := c.(*tls.Conn); ok {
					tc.Handshake()
				}
				c.Close()
			}(conn)
		}
	}()
	return ln.Addr().String(), func() { close(done); ln.Close() }, nil
}

func first(hostnames []string) string {
	if len(hostnames) == 0 {
		return "localhost"
	}
	return hostnames[0]
}
