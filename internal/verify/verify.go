// Package verify implements certificate-chain validation with OpenSSL's
// error taxonomy, which the paper's Table 2 is built on: hostname mismatch,
// unable to get local issuer certificate, self-signed certificate (leaf or
// in chain), and certificate expiry. Validation is performed against a
// truststore.Store at a fixed scan time.
package verify

import (
	"fmt"
	"time"

	"repro/internal/cert"
	"repro/internal/truststore"
)

// Code identifies the primary validation outcome.
type Code int

// Validation outcomes, ordered by reporting precedence: when multiple
// problems exist, the lowest-numbered non-OK code wins, mirroring how
// OpenSSL surfaces the first failure it encounters while building the chain.
const (
	// OK means the full chain validates and the hostname matches.
	OK Code = iota
	// EmptyChain means the server sent no certificates.
	EmptyChain
	// SelfSignedLeaf is OpenSSL's "self signed certificate" (error 18).
	SelfSignedLeaf
	// SelfSignedInChain is "self signed certificate in certificate chain"
	// (error 19).
	SelfSignedInChain
	// UnableToGetLocalIssuer is "unable to get local issuer certificate"
	// (error 20): the chain does not terminate at a trusted root (§3.1).
	UnableToGetLocalIssuer
	// SignatureFailure means a certificate in the chain does not verify
	// against its issuer's key.
	SignatureFailure
	// CertificateExpired is "certificate has expired" (error 10).
	CertificateExpired
	// CertificateNotYetValid is "certificate is not yet valid" (error 9).
	CertificateNotYetValid
	// HostnameMismatch means the leaf does not cover the queried hostname —
	// the leading cause of invalidity in the study (36.6%).
	HostnameMismatch
)

// String returns the OpenSSL-style description of the code.
func (c Code) String() string {
	switch c {
	case OK:
		return "ok"
	case EmptyChain:
		return "empty certificate chain"
	case SelfSignedLeaf:
		return "self signed certificate"
	case SelfSignedInChain:
		return "self signed certificate in certificate chain"
	case UnableToGetLocalIssuer:
		return "unable to get local issuer certificate"
	case SignatureFailure:
		return "certificate signature failure"
	case CertificateExpired:
		return "certificate has expired"
	case CertificateNotYetValid:
		return "certificate is not yet valid"
	case HostnameMismatch:
		return "hostname mismatch"
	default:
		return fmt.Sprintf("Code(%d)", int(c))
	}
}

// Result is the outcome of validating one presented chain.
type Result struct {
	// Code is the primary outcome (highest-precedence failure, or OK).
	Code Code
	// Errors lists every failure observed, including the primary one.
	Errors []Code
	// Depth is the 0-based chain depth at which the primary failure
	// occurred (0 = leaf), or the validated chain length when OK.
	Depth int
	// EV reports whether the validated chain carries a trusted EV policy.
	// Only meaningful when Code == OK.
	EV bool
	// Detail is a human-readable elaboration of the primary failure.
	Detail string
}

// Valid reports whether the chain validated completely.
func (r Result) Valid() bool { return r.Code == OK }

// Has reports whether a particular failure was observed.
func (r Result) Has(c Code) bool {
	for _, e := range r.Errors {
		if e == c {
			return true
		}
	}
	return false
}

// Verifier validates chains against a trust store.
type Verifier struct {
	// Store is the root trust store; the paper uses the Apple-shaped
	// store as the most restrictive option (§4.3).
	Store *truststore.Store
	// Now is the scan time certificates are checked against.
	Now time.Time
	// Cache, when non-nil, memoizes the chain-structural pass (issuer walk,
	// signatures, validity windows, trust anchoring) across hosts that
	// present the same chain. Results are identical with and without it.
	Cache *Cache
}

// Verify validates the presented chain (leaf first) for the given hostname.
// Verification runs in two passes: a chain-structural pass that depends
// only on (chain, store, scan time) and is memoizable via Cache, and a
// cheap per-host hostname-match pass layered on top.
func (v *Verifier) Verify(chain []*cert.Certificate, hostname string) Result {
	if len(chain) == 0 {
		return Result{Code: EmptyChain, Errors: []Code{EmptyChain}, Detail: "server presented no certificates"}
	}
	leaf := chain[0]

	found, ev := v.structural(chain)
	if err := leaf.VerifyHostname(hostname); err != nil {
		found = append(found, failure{HostnameMismatch, 0, err.Error()})
	}

	if len(found) == 0 {
		return Result{
			Code:  OK,
			Depth: len(chain),
			EV:    ev,
		}
	}
	primary := found[0]
	for _, f := range found[1:] {
		if f.code < primary.code {
			primary = f
		}
	}
	res := Result{Code: primary.code, Depth: primary.depth, Detail: primary.detail}
	seen := map[Code]bool{}
	for _, f := range found {
		if !seen[f.code] {
			seen[f.code] = true
			res.Errors = append(res.Errors, f.code)
		}
	}
	return res
}

// structural runs (or recalls) the chain-structural verification pass. The
// returned slice has its capacity clamped to its length, so the hostname
// pass can append without ever mutating a cached entry shared with other
// goroutines.
func (v *Verifier) structural(chain []*cert.Certificate) ([]failure, bool) {
	var k cacheKey
	if v.Cache != nil {
		k = cacheKey{chain: chainDigest(chain), store: v.Store, now: v.Now.UnixNano()}
		if e, ok := v.Cache.lookup(k); ok {
			return e.found, e.ev
		}
	}

	var found []failure
	depth := v.buildChain(chain, &found)
	for i, c := range chain[:min(depth+1, len(chain))] {
		if c.IsExpiredAt(v.Now) {
			found = append(found, failure{CertificateExpired, i,
				fmt.Sprintf("certificate at depth %d expired %s", i, c.NotAfter.Format("2006-01-02"))})
		} else if c.IsNotYetValidAt(v.Now) {
			found = append(found, failure{CertificateNotYetValid, i,
				fmt.Sprintf("certificate at depth %d not valid before %s", i, c.NotBefore.Format("2006-01-02"))})
		}
	}
	found = found[:len(found):len(found)]
	ev := v.isEV(chain[0])
	if v.Cache != nil {
		v.Cache.store(k, &cacheEntry{found: found, ev: ev})
	}
	return found, ev
}

type failure struct {
	code   Code
	depth  int
	detail string
}

// buildChain walks the presented chain from the leaf, resolving each
// certificate's issuer among the remaining presented certificates or the
// trust store, and records chain-construction failures. It returns the
// number of presented-chain hops it could anchor, used to bound the expiry
// checks to certificates that actually participate in the chain.
func (v *Verifier) buildChain(chain []*cert.Certificate, found *[]failure) int {
	current := chain[0]
	idx := 0   // index of current within the presented chain
	depth := 0 // number of hops walked from the leaf
	used := make([]bool, len(chain))
	used[0] = true
	for {
		if current.SelfSigned() {
			if v.Store.Contains(current) {
				return idx // anchored at a trusted root the server also presented
			}
			code := SelfSignedLeaf
			detail := "leaf certificate is self-signed and untrusted"
			if depth > 0 {
				code = SelfSignedInChain
				detail = fmt.Sprintf("self-signed certificate at chain depth %d", depth)
			}
			*found = append(*found, failure{code, depth, detail})
			return idx
		}
		if _, ok := v.Store.FindIssuer(current); ok {
			return idx // issuer is a trusted root
		}
		nextIdx, sigBroken := findIssuerIn(current, chain, used)
		if sigBroken {
			*found = append(*found, failure{SignatureFailure, depth,
				fmt.Sprintf("issuer key for %q found but signature does not verify", current.Subject.CommonName)})
			return idx
		}
		if nextIdx < 0 {
			*found = append(*found, failure{UnableToGetLocalIssuer, depth,
				fmt.Sprintf("no issuer for %q in presented chain or trust store", current.Subject.CommonName)})
			return idx
		}
		used[nextIdx] = true
		depth++
		idx = nextIdx
		current = chain[nextIdx]
	}
}

// findIssuerIn locates an unused presented CA certificate whose key issued
// c. It returns the candidate's index, or -1 when none matches; sigBroken is
// set when a candidate held the right key but the signature failed to verify
// (OpenSSL's "certificate signature failure").
func findIssuerIn(c *cert.Certificate, chain []*cert.Certificate, used []bool) (idx int, sigBroken bool) {
	sawKeyMatch := false
	for i, cand := range chain {
		if used[i] || !cand.IsCA {
			continue
		}
		if cand.PublicKey.ID != c.AuthorityKeyID {
			continue
		}
		if c.CheckSignatureFrom(cand) == nil {
			return i, false
		}
		sawKeyMatch = true
	}
	return -1, sawKeyMatch
}

func (v *Verifier) isEV(leaf *cert.Certificate) bool {
	for _, oid := range leaf.PolicyOIDs {
		if v.Store.IsTrustedEVPolicy(oid) {
			return true
		}
	}
	return false
}
