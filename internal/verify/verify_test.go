package verify

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cert"
	"repro/internal/truststore"
)

var scanTime = time.Date(2020, 4, 22, 0, 0, 0, 0, time.UTC)

// pki is a small hand-built hierarchy: trusted root -> intermediate -> leaf.
type pki struct {
	root, inter *cert.Certificate
	rootKey     cert.PublicKey
	interKey    cert.PublicKey
	store       *truststore.Store
	rng         *rand.Rand
}

func newPKI(t *testing.T, seed int64) *pki {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	rootKey := cert.NewKey(r, cert.KeyRSA, 4096)
	root := &cert.Certificate{
		Subject:            cert.Name{CommonName: "Test Root CA", Organization: "Test Trust"},
		Issuer:             cert.Name{CommonName: "Test Root CA", Organization: "Test Trust"},
		NotBefore:          scanTime.AddDate(-10, 0, 0),
		NotAfter:           scanTime.AddDate(10, 0, 0),
		PublicKey:          rootKey,
		SignatureAlgorithm: cert.SHA256WithRSA,
		IsCA:               true,
	}
	root.Sign(rootKey.ID)

	interKey := cert.NewKey(r, cert.KeyRSA, 2048)
	inter := &cert.Certificate{
		Subject:            cert.Name{CommonName: "Test Issuing CA"},
		Issuer:             root.Subject,
		NotBefore:          scanTime.AddDate(-5, 0, 0),
		NotAfter:           scanTime.AddDate(5, 0, 0),
		PublicKey:          interKey,
		SignatureAlgorithm: cert.SHA256WithRSA,
		IsCA:               true,
	}
	inter.Sign(rootKey.ID)

	store := truststore.New("test")
	store.AddRoot(root, "Test Trust")
	return &pki{root: root, inter: inter, rootKey: rootKey, interKey: interKey, store: store, rng: r}
}

func (p *pki) leaf(host string, mutate func(*cert.Certificate)) *cert.Certificate {
	key := cert.NewKey(p.rng, cert.KeyRSA, 2048)
	l := &cert.Certificate{
		SerialNumber:       p.rng.Uint64(),
		Subject:            cert.Name{CommonName: host},
		Issuer:             p.inter.Subject,
		DNSNames:           []string{host},
		NotBefore:          scanTime.AddDate(0, -6, 0),
		NotAfter:           scanTime.AddDate(0, 18, 0),
		PublicKey:          key,
		SignatureAlgorithm: cert.SHA256WithRSA,
	}
	if mutate != nil {
		mutate(l)
	}
	l.Sign(p.interKey.ID)
	return l
}

func (p *pki) verifier() *Verifier { return &Verifier{Store: p.store, Now: scanTime} }

func TestValidChain(t *testing.T) {
	p := newPKI(t, 1)
	leaf := p.leaf("www.agency.gov", nil)
	res := p.verifier().Verify([]*cert.Certificate{leaf, p.inter}, "www.agency.gov")
	if !res.Valid() {
		t.Fatalf("valid chain rejected: %v (%s)", res.Code, res.Detail)
	}
	if res.EV {
		t.Error("non-EV chain reported EV")
	}
}

func TestEmptyChain(t *testing.T) {
	p := newPKI(t, 2)
	res := p.verifier().Verify(nil, "x.gov")
	if res.Code != EmptyChain {
		t.Errorf("Code = %v, want EmptyChain", res.Code)
	}
}

func TestHostnameMismatch(t *testing.T) {
	p := newPKI(t, 3)
	leaf := p.leaf("www.agency.gov", nil)
	res := p.verifier().Verify([]*cert.Certificate{leaf, p.inter}, "other.agency.gov")
	if res.Code != HostnameMismatch {
		t.Errorf("Code = %v, want HostnameMismatch", res.Code)
	}
}

func TestWildcardMisuse(t *testing.T) {
	// The Bangladesh case (§5.3.3): *.portal.gov.bd served on forms.gov.bd.
	p := newPKI(t, 4)
	leaf := p.leaf("ignored", func(c *cert.Certificate) {
		c.Subject.CommonName = "*.portal.gov.bd"
		c.DNSNames = []string{"*.portal.gov.bd"}
	})
	chain := []*cert.Certificate{leaf, p.inter}
	if res := p.verifier().Verify(chain, "forms.portal.gov.bd"); !res.Valid() {
		t.Errorf("in-zone wildcard use invalid: %v", res.Code)
	}
	if res := p.verifier().Verify(chain, "forms.gov.bd"); res.Code != HostnameMismatch {
		t.Errorf("out-of-zone wildcard = %v, want HostnameMismatch", res.Code)
	}
}

func TestExpiredLeaf(t *testing.T) {
	p := newPKI(t, 5)
	leaf := p.leaf("www.agency.gov", func(c *cert.Certificate) {
		c.NotBefore = scanTime.AddDate(-3, 0, 0)
		c.NotAfter = scanTime.AddDate(0, 0, -30)
	})
	res := p.verifier().Verify([]*cert.Certificate{leaf, p.inter}, "www.agency.gov")
	if res.Code != CertificateExpired {
		t.Errorf("Code = %v, want CertificateExpired", res.Code)
	}
}

func TestNotYetValidLeaf(t *testing.T) {
	p := newPKI(t, 6)
	leaf := p.leaf("www.agency.gov", func(c *cert.Certificate) {
		c.NotBefore = scanTime.AddDate(0, 1, 0)
		c.NotAfter = scanTime.AddDate(2, 0, 0)
	})
	res := p.verifier().Verify([]*cert.Certificate{leaf, p.inter}, "www.agency.gov")
	if res.Code != CertificateNotYetValid {
		t.Errorf("Code = %v, want CertificateNotYetValid", res.Code)
	}
}

func TestSelfSignedLeaf(t *testing.T) {
	p := newPKI(t, 7)
	key := cert.NewKey(p.rng, cert.KeyRSA, 2048)
	ss := &cert.Certificate{
		Subject:   cert.Name{CommonName: "localhost"},
		Issuer:    cert.Name{CommonName: "localhost"},
		DNSNames:  []string{"localhost"},
		NotBefore: scanTime.AddDate(-1, 0, 0),
		NotAfter:  scanTime.AddDate(10, 0, 0),
		PublicKey: key,
	}
	ss.Sign(key.ID)
	res := p.verifier().Verify([]*cert.Certificate{ss}, "site.gov.xx")
	if res.Code != SelfSignedLeaf {
		t.Errorf("Code = %v, want SelfSignedLeaf", res.Code)
	}
	// The hostname mismatch is also recorded as a secondary error.
	if !res.Has(HostnameMismatch) {
		t.Error("secondary HostnameMismatch not recorded")
	}
}

func TestSelfSignedInChain(t *testing.T) {
	p := newPKI(t, 8)
	// Build an untrusted root and an intermediate under it.
	rogueKey := cert.NewKey(p.rng, cert.KeyRSA, 2048)
	rogue := &cert.Certificate{
		Subject: cert.Name{CommonName: "Rogue Root"}, Issuer: cert.Name{CommonName: "Rogue Root"},
		NotBefore: scanTime.AddDate(-2, 0, 0), NotAfter: scanTime.AddDate(8, 0, 0),
		PublicKey: rogueKey, IsCA: true,
	}
	rogue.Sign(rogueKey.ID)
	leafKey := cert.NewKey(p.rng, cert.KeyRSA, 2048)
	leaf := &cert.Certificate{
		Subject: cert.Name{CommonName: "site.gov.xx"}, Issuer: rogue.Subject,
		DNSNames:  []string{"site.gov.xx"},
		NotBefore: scanTime.AddDate(-1, 0, 0), NotAfter: scanTime.AddDate(1, 0, 0),
		PublicKey: leafKey,
	}
	leaf.Sign(rogueKey.ID)
	res := p.verifier().Verify([]*cert.Certificate{leaf, rogue}, "site.gov.xx")
	if res.Code != SelfSignedInChain {
		t.Errorf("Code = %v, want SelfSignedInChain", res.Code)
	}
	if res.Depth != 1 {
		t.Errorf("Depth = %d, want 1", res.Depth)
	}
}

func TestUnableToGetLocalIssuer(t *testing.T) {
	p := newPKI(t, 9)
	leaf := p.leaf("www.agency.gov", nil)
	// Server presents only the leaf; the intermediate is missing and the
	// leaf's issuer is not a root — OpenSSL error 20.
	res := p.verifier().Verify([]*cert.Certificate{leaf}, "www.agency.gov")
	if res.Code != UnableToGetLocalIssuer {
		t.Errorf("Code = %v, want UnableToGetLocalIssuer", res.Code)
	}
}

func TestSignatureFailure(t *testing.T) {
	p := newPKI(t, 10)
	leaf := p.leaf("www.agency.gov", nil)
	// Tamper with the leaf after signing: its issuer's key is present but
	// the signature no longer verifies.
	leaf.SerialNumber ^= 0xFF
	res := p.verifier().Verify([]*cert.Certificate{leaf, p.inter}, "www.agency.gov")
	if res.Code != SignatureFailure {
		t.Errorf("Code = %v, want SignatureFailure", res.Code)
	}
}

func TestExpiredIntermediate(t *testing.T) {
	p := newPKI(t, 11)
	p.inter.NotAfter = scanTime.AddDate(0, 0, -1)
	p.inter.Sign(p.rootKey.ID)
	leaf := p.leaf("www.agency.gov", nil)
	res := p.verifier().Verify([]*cert.Certificate{leaf, p.inter}, "www.agency.gov")
	if res.Code != CertificateExpired {
		t.Errorf("Code = %v, want CertificateExpired", res.Code)
	}
	if res.Depth != 1 {
		t.Errorf("Depth = %d, want 1 (intermediate)", res.Depth)
	}
}

func TestExpiredBeatsHostnameMismatch(t *testing.T) {
	p := newPKI(t, 12)
	leaf := p.leaf("www.agency.gov", func(c *cert.Certificate) {
		c.NotAfter = scanTime.AddDate(0, 0, -10)
	})
	res := p.verifier().Verify([]*cert.Certificate{leaf, p.inter}, "unrelated.gov")
	if res.Code != CertificateExpired {
		t.Errorf("primary = %v, want CertificateExpired", res.Code)
	}
	if !res.Has(HostnameMismatch) {
		t.Error("HostnameMismatch missing from Errors")
	}
}

func TestEVDetection(t *testing.T) {
	p := newPKI(t, 13)
	p.store.TrustEVPolicy("2.16.840.1.114412.2.1") // DigiCert EV OID
	leaf := p.leaf("secure.agency.gov", func(c *cert.Certificate) {
		c.PolicyOIDs = []string{"2.16.840.1.114412.2.1"}
	})
	res := p.verifier().Verify([]*cert.Certificate{leaf, p.inter}, "secure.agency.gov")
	if !res.Valid() || !res.EV {
		t.Errorf("EV chain: valid=%v ev=%v", res.Valid(), res.EV)
	}
	// An untrusted policy OID must not grant EV.
	leaf2 := p.leaf("secure2.agency.gov", func(c *cert.Certificate) {
		c.PolicyOIDs = []string{"1.2.3.4.5"}
	})
	res2 := p.verifier().Verify([]*cert.Certificate{leaf2, p.inter}, "secure2.agency.gov")
	if res2.EV {
		t.Error("untrusted policy OID granted EV")
	}
}

func TestRootPresentedInChain(t *testing.T) {
	p := newPKI(t, 14)
	leaf := p.leaf("www.agency.gov", nil)
	// Some servers send the full chain including the root; that is valid.
	res := p.verifier().Verify([]*cert.Certificate{leaf, p.inter, p.root}, "www.agency.gov")
	if !res.Valid() {
		t.Errorf("chain with root rejected: %v", res.Code)
	}
}

func TestOutOfOrderChain(t *testing.T) {
	p := newPKI(t, 15)
	leaf := p.leaf("www.agency.gov", nil)
	// Intermediate and root swapped relative to canonical order.
	res := p.verifier().Verify([]*cert.Certificate{leaf, p.root, p.inter}, "www.agency.gov")
	if !res.Valid() {
		t.Errorf("out-of-order chain rejected: %v", res.Code)
	}
}

func TestUntrustedStoreRejectsKnownChain(t *testing.T) {
	p := newPKI(t, 16)
	leaf := p.leaf("www.agency.gov", nil)
	empty := truststore.New("empty")
	v := &Verifier{Store: empty, Now: scanTime}
	res := v.Verify([]*cert.Certificate{leaf, p.inter}, "www.agency.gov")
	if res.Code != UnableToGetLocalIssuer {
		t.Errorf("Code = %v, want UnableToGetLocalIssuer with empty store", res.Code)
	}
}

func TestCodeStrings(t *testing.T) {
	if OK.String() != "ok" {
		t.Errorf("OK = %q", OK.String())
	}
	if UnableToGetLocalIssuer.String() != "unable to get local issuer certificate" {
		t.Errorf("UnableToGetLocalIssuer = %q", UnableToGetLocalIssuer.String())
	}
	if Code(99).String() == "" {
		t.Error("unknown code renders empty")
	}
}

func TestPropertyVerifyNeverPanicsAndIsDeterministic(t *testing.T) {
	// Random mutations of a real chain must classify deterministically and
	// never panic.
	p := newPKI(t, 99)
	base := p.leaf("www.agency.gov", nil)
	f := func(dropInter, tamper, wrongHost, expire bool, serialDelta uint8) bool {
		leaf := base.Clone()
		if tamper {
			leaf.SerialNumber += uint64(serialDelta) + 1
		}
		if expire {
			leaf.NotAfter = scanTime.AddDate(0, 0, -1)
			leaf.Sign(p.interKey.ID)
		}
		chain := []*cert.Certificate{leaf, p.inter}
		if dropInter {
			chain = chain[:1]
		}
		host := "www.agency.gov"
		if wrongHost {
			host = "other.example.gov"
		}
		v := p.verifier()
		r1 := v.Verify(chain, host)
		r2 := v.Verify(chain, host)
		if r1.Code != r2.Code {
			return false
		}
		// A pristine configuration must verify; any mutation must not.
		pristine := !dropInter && !tamper && !wrongHost && !expire
		return pristine == r1.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
