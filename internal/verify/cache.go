package verify

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"

	"repro/internal/cert"
	"repro/internal/truststore"
)

// Cache memoizes the chain-structural half of verification — the issuer
// walk, signature checks, validity-window checks and trust anchoring —
// which depends only on the presented chain, the trust store and the scan
// time. The per-host hostname-match pass is layered on top by Verify, so
// thousands of hosts behind the same shared wildcard or internal CA pay the
// structural cost once. Sharded for concurrent scanners; safe for use from
// many goroutines.
type Cache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

const cacheShards = 16

type cacheShard struct {
	mu sync.RWMutex
	m  map[cacheKey]*cacheEntry
}

// cacheKey identifies one structural verification: the digest of the
// presented chain's certificate fingerprints (leaf first — the leaf alone
// is ambiguous because the world serves truncated presentations of the
// same leaf), the trust store, and the scan time.
type cacheKey struct {
	chain [32]byte
	store *truststore.Store
	now   int64
}

// cacheEntry holds the structural failures (read-only, capacity clamped so
// appends never mutate the shared array) and the leaf's EV status.
type cacheEntry struct {
	found []failure
	ev    bool
}

// NewCache returns an empty structural-verification cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey]*cacheEntry)
	}
	return c
}

// chainDigest folds the chain's certificate fingerprints, leaf first.
func chainDigest(chain []*cert.Certificate) [32]byte {
	h := sha256.New()
	for _, c := range chain {
		fp := c.Fingerprint()
		h.Write(fp[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func (c *Cache) shard(k cacheKey) *cacheShard {
	return &c.shards[k.chain[0]%cacheShards]
}

func (c *Cache) lookup(k cacheKey) (*cacheEntry, bool) {
	s := c.shard(k)
	s.mu.RLock()
	e, ok := s.m[k]
	s.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

func (c *Cache) store(k cacheKey, e *cacheEntry) {
	s := c.shard(k)
	s.mu.Lock()
	if _, ok := s.m[k]; !ok {
		s.m[k] = e
	}
	s.mu.Unlock()
}

// Stats reports cache hits and misses since creation.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of cached structural results.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.RLock()
		n += len(c.shards[i].m)
		c.shards[i].mu.RUnlock()
	}
	return n
}
