package httpsim

import (
	"strings"
)

// RenderPage produces the HTML body of a simulated government page: a
// title and an anchor per outbound link. The crawler extracts the anchors
// with ExtractLinks.
func RenderPage(title string, links []string) []byte {
	size := 128 + 2*len(title)
	for _, l := range links {
		size += 32 + 2*len(l)
	}
	b := make([]byte, 0, size)
	b = append(b, "<!DOCTYPE html>\n<html>\n<head><title>"...)
	b = append(b, escapeHTML(title)...)
	b = append(b, "</title></head>\n<body>\n<h1>"...)
	b = append(b, escapeHTML(title)...)
	b = append(b, "</h1>\n<ul>\n"...)
	for _, l := range links {
		b = append(b, "  <li><a href=\""...)
		b = append(b, l...)
		b = append(b, "\">"...)
		b = append(b, escapeHTML(l)...)
		b = append(b, "</a></li>\n"...)
	}
	b = append(b, "</ul>\n</body>\n</html>\n"...)
	return b
}

// ExtractLinks pulls every href target out of an HTML document. It accepts
// double- and single-quoted attribute values and tolerates surrounding
// attribute noise — enough robustness for the pages the simulated
// governments serve and for mildly malformed markup.
func ExtractLinks(body []byte) []string {
	var out []string
	s := string(body)
	for {
		i := indexCaseInsensitive(s, "href=")
		if i < 0 {
			break
		}
		s = s[i+len("href="):]
		if s == "" {
			break
		}
		var value string
		switch s[0] {
		case '"', '\'':
			quote := s[0]
			end := strings.IndexByte(s[1:], quote)
			if end < 0 {
				return out
			}
			value = s[1 : 1+end]
			s = s[2+end:]
		default:
			end := strings.IndexAny(s, " >\t\r\n")
			if end < 0 {
				end = len(s)
			}
			value = s[:end]
			s = s[end:]
		}
		if value != "" {
			out = append(out, value)
		}
	}
	return out
}

// HostOf extracts the hostname from a link target such as
// "https://a.gov.br/page" or "//b.gov.br" or "a.gov.br/page". Relative
// links return "".
func HostOf(link string) string {
	l := link
	switch {
	case strings.HasPrefix(l, "https://"):
		l = l[len("https://"):]
	case strings.HasPrefix(l, "http://"):
		l = l[len("http://"):]
	case strings.HasPrefix(l, "//"):
		l = l[2:]
	case strings.HasPrefix(l, "/"), strings.HasPrefix(l, "#"), strings.HasPrefix(l, "?"):
		return ""
	case !strings.Contains(l, "."):
		return ""
	}
	if i := strings.IndexAny(l, "/?#"); i >= 0 {
		l = l[:i]
	}
	if i := strings.IndexByte(l, ':'); i >= 0 {
		l = l[:i]
	}
	return strings.ToLower(l)
}

func indexCaseInsensitive(s, sub string) int {
	return strings.Index(strings.ToLower(s), sub)
}

// htmlEscaper is shared across calls: strings.NewReplacer builds its
// matching machine lazily on first Replace and is safe for concurrent use.
var htmlEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")

func escapeHTML(s string) string {
	return htmlEscaper.Replace(s)
}
