// Package httpsim implements the minimal HTTP/1.1 dialect spoken between
// the study's scanner/crawler and the simulated web servers: request and
// response serialization, status codes, redirects (including the http→https
// upgrade the paper measures), HSTS headers, and HTML pages carrying the
// hyperlinks the crawler follows.
package httpsim

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"unicode/utf8"
)

// Protocol limits.
const (
	maxHeaderLines = 100
	maxLineLen     = 8192
	maxBodyLen     = 4 << 20
)

// Parsing errors.
var (
	ErrMalformedRequest  = errors.New("httpsim: malformed request")
	ErrMalformedResponse = errors.New("httpsim: malformed response")
	ErrBodyTooLarge      = errors.New("httpsim: body exceeds limit")
)

// Request is a parsed HTTP request.
type Request struct {
	Method string
	Path   string
	Host   string
	Header map[string]string
	Body   []byte
}

// Response is a parsed HTTP response.
type Response struct {
	StatusCode int
	Header     map[string]string
	Body       []byte
}

// HSTS reports whether the response carries a Strict-Transport-Security
// header (§8.2's HSTS preload recommendation).
func (r *Response) HSTS() bool {
	_, ok := r.Header["strict-transport-security"]
	return ok
}

// Location returns the redirect target, if any.
func (r *Response) Location() string { return r.Header["location"] }

// IsRedirect reports whether the status code denotes a redirect.
func (r *Response) IsRedirect() bool {
	return r.StatusCode == 301 || r.StatusCode == 302 || r.StatusCode == 307 || r.StatusCode == 308
}

// bufPool recycles the serialization buffers WriteRequestBody and
// WriteResponse build wire bytes in: the buffer is fully written to the
// connection before the call returns, so it holds no live state.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// WriteRequest sends a body-less request over the connection.
func WriteRequest(w io.Writer, method, host, path string) error {
	return WriteRequestBody(w, method, host, path, "", nil)
}

// WriteRequestBody sends a request carrying a body (POST-style).
func WriteRequestBody(w io.Writer, method, host, path, contentType string, body []byte) error {
	if path == "" {
		path = "/"
	}
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, method...)
	b = append(b, ' ')
	b = append(b, path...)
	b = append(b, " HTTP/1.1\r\nHost: "...)
	b = append(b, host...)
	b = append(b, "\r\nUser-Agent: govhttps-scanner/1.0\r\nConnection: close\r\n"...)
	if contentType != "" {
		b = append(b, "Content-Type: "...)
		b = append(b, contentType...)
		b = append(b, "\r\n"...)
	}
	if len(body) > 0 {
		b = append(b, "Content-Length: "...)
		b = strconv.AppendInt(b, int64(len(body)), 10)
		b = append(b, "\r\n"...)
	}
	b = append(b, "\r\n"...)
	_, err := w.Write(b)
	*bp = b
	bufPool.Put(bp)
	if err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// httpProto is the protocol prefix both start-line parsers check for.
var httpProto = []byte("HTTP/1.")

// ReadRequest parses a request from the connection.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	i1 := bytes.IndexByte(line, ' ')
	i2 := -1
	if i1 >= 0 {
		i2 = bytes.IndexByte(line[i1+1:], ' ')
	}
	if i1 < 0 || i2 < 0 || !bytes.HasPrefix(line[i1+1+i2+1:], httpProto) {
		//lint:allow hotalloc cold malformed-input branch: formats only when returning a protocol error
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformedRequest, line)
	}
	req := &Request{
		Method: internToken(line[:i1]),
		Path:   string(line[i1+1 : i1+1+i2]),
		Header: make(map[string]string, 4),
	}
	if err := readHeaders(br, req.Header); err != nil {
		return nil, err
	}
	req.Host = req.Header["host"]
	if cl, ok := req.Header["content-length"]; ok {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			//lint:allow hotalloc cold malformed-input branch: formats only when returning a protocol error
			return nil, fmt.Errorf("%w: bad content-length %q", ErrMalformedRequest, cl)
		}
		if n > maxBodyLen {
			return nil, ErrBodyTooLarge
		}
		req.Body = make([]byte, n)
		if _, err := io.ReadFull(br, req.Body); err != nil {
			return nil, err
		}
	}
	return req, nil
}

// brPool recycles the response readers Get/Post allocate: responses are
// fully consumed by ReadResponse, so the reader holds no live state when
// the call returns.
var brPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 4096) },
}

func readPooled(conn net.Conn) (*Response, error) {
	br := brPool.Get().(*bufio.Reader)
	br.Reset(conn)
	resp, err := ReadResponse(br)
	br.Reset(nil)
	brPool.Put(br)
	return resp, err
}

// ReadRequestConn parses one request from conn using a pooled reader. The
// request is fully consumed before the call returns, so the reader carries
// no state back into the pool.
func ReadRequestConn(conn net.Conn) (*Request, error) {
	br := brPool.Get().(*bufio.Reader)
	br.Reset(conn)
	req, err := ReadRequest(br)
	br.Reset(nil)
	brPool.Put(br)
	return req, err
}

// Post performs one POST over an established connection and parses the
// response.
func Post(conn net.Conn, host, path, contentType string, body []byte) (*Response, error) {
	if err := WriteRequestBody(conn, "POST", host, path, contentType, body); err != nil {
		return nil, err
	}
	return readPooled(conn)
}

// WriteResponse sends a response with the given status, headers and body.
// Content-Length and Connection are managed automatically.
func WriteResponse(w io.Writer, status int, header map[string]string, body []byte) error {
	bp := bufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, "HTTP/1.1 "...)
	b = strconv.AppendInt(b, int64(status), 10)
	b = append(b, ' ')
	b = append(b, StatusText(status)...)
	b = append(b, "\r\n"...)
	for k, v := range header {
		b = append(b, k...)
		b = append(b, ": "...)
		b = append(b, v...)
		b = append(b, "\r\n"...)
	}
	b = append(b, "Content-Length: "...)
	b = strconv.AppendInt(b, int64(len(body)), 10)
	b = append(b, "\r\nConnection: close\r\n\r\n"...)
	_, err := w.Write(b)
	*bp = b
	bufPool.Put(bp)
	if err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadResponse parses a response from the connection.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	i1 := bytes.IndexByte(line, ' ')
	if i1 < 0 || !bytes.HasPrefix(line, httpProto) {
		//lint:allow hotalloc cold malformed-input branch: formats only when returning a protocol error
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformedResponse, line)
	}
	sb := line[i1+1:]
	if i2 := bytes.IndexByte(sb, ' '); i2 >= 0 {
		sb = sb[:i2]
	}
	status, err := atoiBytes(sb)
	if err != nil {
		//lint:allow hotalloc cold malformed-input branch: formats only when returning a protocol error
		return nil, fmt.Errorf("%w: bad status code %q", ErrMalformedResponse, sb)
	}
	resp := &Response{StatusCode: status, Header: make(map[string]string, 4)}
	if err := readHeaders(br, resp.Header); err != nil {
		return nil, err
	}
	n := 0
	if cl, ok := resp.Header["content-length"]; ok {
		n, err = strconv.Atoi(cl)
		if err != nil || n < 0 {
			//lint:allow hotalloc cold malformed-input branch: formats only when returning a protocol error
			return nil, fmt.Errorf("%w: bad content-length %q", ErrMalformedResponse, cl)
		}
		if n > maxBodyLen {
			return nil, ErrBodyTooLarge
		}
	}
	resp.Body = make([]byte, n)
	if _, err := io.ReadFull(br, resp.Body); err != nil {
		return nil, err
	}
	return resp, nil
}

// readLine reads one CRLF-terminated line and returns it without the
// trailing "\r\n" chars, as a slice into the reader's buffer — valid only
// until the next read, so callers copy what they keep. Lines longer than
// the buffer are accumulated (rare; protocol lines are short).
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		acc := append([]byte(nil), line...)
		for err == bufio.ErrBufferFull {
			if len(acc) > maxLineLen {
				return nil, ErrMalformedRequest
			}
			line, err = br.ReadSlice('\n')
			acc = append(acc, line...)
		}
		line = acc
	}
	if err != nil {
		return nil, err
	}
	if len(line) > maxLineLen {
		return nil, ErrMalformedRequest
	}
	for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
		line = line[:len(line)-1]
	}
	return line, nil
}

func readHeaders(br *bufio.Reader, into map[string]string) error {
	for i := 0; i < maxHeaderLines; i++ {
		line, err := readLine(br)
		if err != nil {
			return err
		}
		if len(line) == 0 {
			return nil
		}
		c := bytes.IndexByte(line, ':')
		if c < 0 {
			//lint:allow hotalloc cold malformed-input branch: formats only when returning a protocol error
			return fmt.Errorf("%w: bad header line %q", ErrMalformedRequest, line)
		}
		into[headerKey(bytes.TrimSpace(line[:c]))] = internToken(bytes.TrimSpace(line[c+1:]))
	}
	//lint:allow hotalloc cold malformed-input branch: formats only when returning a protocol error
	return fmt.Errorf("%w: too many header lines", ErrMalformedRequest)
}

// headerKey lower-cases a header name, returning the canonical string for
// the protocol's well-known headers without allocating.
func headerKey(k []byte) string {
	lower, ascii := true, true
	for _, c := range k {
		if c >= utf8.RuneSelf {
			ascii = false
			break
		}
		if 'A' <= c && c <= 'Z' {
			lower = false
		}
	}
	if !ascii {
		return strings.ToLower(string(k))
	}
	if !lower {
		var buf [64]byte
		if len(k) > len(buf) {
			return strings.ToLower(string(k))
		}
		for i, c := range k {
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			buf[i] = c
		}
		k = buf[:len(k)]
	}
	switch string(k) {
	case "host":
		return "host"
	case "user-agent":
		return "user-agent"
	case "connection":
		return "connection"
	case "content-type":
		return "content-type"
	case "content-length":
		return "content-length"
	case "location":
		return "location"
	case "strict-transport-security":
		return "strict-transport-security"
	}
	return string(k)
}

// internToken returns canonical strings for the dialect's fixed tokens
// (methods and the header values every simulated peer sends), avoiding a
// per-message allocation.
func internToken(b []byte) string {
	switch string(b) {
	case "GET":
		return "GET"
	case "POST":
		return "POST"
	case "close":
		return "close"
	case "text/html":
		return "text/html"
	case "govhttps-scanner/1.0":
		return "govhttps-scanner/1.0"
	}
	return string(b)
}

// atoiBytes is strconv.Atoi for a byte slice: an allocation-free
// all-digits fast path, falling back to Atoi (and its exact error
// semantics) for anything else.
func atoiBytes(b []byte) (int, error) {
	if n := len(b); n > 0 && n <= 9 {
		v, ok := 0, true
		for _, c := range b {
			if c < '0' || c > '9' {
				ok = false
				break
			}
			v = v*10 + int(c-'0')
		}
		if ok {
			return v, nil
		}
	}
	return strconv.Atoi(string(b))
}

// StatusText returns the reason phrase for the status codes the study uses.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 307:
		return "Temporary Redirect"
	case 308:
		return "Permanent Redirect"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Status"
	}
}

// Get performs one GET over an established connection (plain or TLS) and
// parses the response.
func Get(conn net.Conn, host, path string) (*Response, error) {
	if err := WriteRequest(conn, "GET", host, path); err != nil {
		return nil, err
	}
	return readPooled(conn)
}
