// Package httpsim implements the minimal HTTP/1.1 dialect spoken between
// the study's scanner/crawler and the simulated web servers: request and
// response serialization, status codes, redirects (including the http→https
// upgrade the paper measures), HSTS headers, and HTML pages carrying the
// hyperlinks the crawler follows.
package httpsim

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Protocol limits.
const (
	maxHeaderLines = 100
	maxLineLen     = 8192
	maxBodyLen     = 4 << 20
)

// Parsing errors.
var (
	ErrMalformedRequest  = errors.New("httpsim: malformed request")
	ErrMalformedResponse = errors.New("httpsim: malformed response")
	ErrBodyTooLarge      = errors.New("httpsim: body exceeds limit")
)

// Request is a parsed HTTP request.
type Request struct {
	Method string
	Path   string
	Host   string
	Header map[string]string
	Body   []byte
}

// Response is a parsed HTTP response.
type Response struct {
	StatusCode int
	Header     map[string]string
	Body       []byte
}

// HSTS reports whether the response carries a Strict-Transport-Security
// header (§8.2's HSTS preload recommendation).
func (r *Response) HSTS() bool {
	_, ok := r.Header["strict-transport-security"]
	return ok
}

// Location returns the redirect target, if any.
func (r *Response) Location() string { return r.Header["location"] }

// IsRedirect reports whether the status code denotes a redirect.
func (r *Response) IsRedirect() bool {
	return r.StatusCode == 301 || r.StatusCode == 302 || r.StatusCode == 307 || r.StatusCode == 308
}

// WriteRequest sends a body-less request over the connection.
func WriteRequest(w io.Writer, method, host, path string) error {
	return WriteRequestBody(w, method, host, path, "", nil)
}

// WriteRequestBody sends a request carrying a body (POST-style).
func WriteRequestBody(w io.Writer, method, host, path, contentType string, body []byte) error {
	if path == "" {
		path = "/"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\nHost: %s\r\nUser-Agent: govhttps-scanner/1.0\r\nConnection: close\r\n", method, path, host)
	if contentType != "" {
		fmt.Fprintf(&b, "Content-Type: %s\r\n", contentType)
	}
	if len(body) > 0 {
		fmt.Fprintf(&b, "Content-Length: %d\r\n", len(body))
	}
	b.WriteString("\r\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// ReadRequest parses a request from the connection.
func ReadRequest(br *bufio.Reader) (*Request, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, fmt.Errorf("%w: bad request line %q", ErrMalformedRequest, line)
	}
	req := &Request{Method: parts[0], Path: parts[1], Header: map[string]string{}}
	if err := readHeaders(br, req.Header); err != nil {
		return nil, err
	}
	req.Host = req.Header["host"]
	if cl, ok := req.Header["content-length"]; ok {
		n, err := strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: bad content-length %q", ErrMalformedRequest, cl)
		}
		if n > maxBodyLen {
			return nil, ErrBodyTooLarge
		}
		req.Body = make([]byte, n)
		if _, err := io.ReadFull(br, req.Body); err != nil {
			return nil, err
		}
	}
	return req, nil
}

// brPool recycles the response readers Get/Post allocate: responses are
// fully consumed by ReadResponse, so the reader holds no live state when
// the call returns.
var brPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 4096) },
}

func readPooled(conn net.Conn) (*Response, error) {
	br := brPool.Get().(*bufio.Reader)
	br.Reset(conn)
	resp, err := ReadResponse(br)
	br.Reset(nil)
	brPool.Put(br)
	return resp, err
}

// ReadRequestConn parses one request from conn using a pooled reader. The
// request is fully consumed before the call returns, so the reader carries
// no state back into the pool.
func ReadRequestConn(conn net.Conn) (*Request, error) {
	br := brPool.Get().(*bufio.Reader)
	br.Reset(conn)
	req, err := ReadRequest(br)
	br.Reset(nil)
	brPool.Put(br)
	return req, err
}

// Post performs one POST over an established connection and parses the
// response.
func Post(conn net.Conn, host, path, contentType string, body []byte) (*Response, error) {
	if err := WriteRequestBody(conn, "POST", host, path, contentType, body); err != nil {
		return nil, err
	}
	return readPooled(conn)
}

// WriteResponse sends a response with the given status, headers and body.
// Content-Length and Connection are managed automatically.
func WriteResponse(w io.Writer, status int, header map[string]string, body []byte) error {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", status, StatusText(status))
	for k, v := range header {
		fmt.Fprintf(&b, "%s: %s\r\n", k, v)
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\nConnection: close\r\n\r\n", len(body))
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadResponse parses a response from the connection.
func ReadResponse(br *bufio.Reader) (*Response, error) {
	line, err := readLine(br)
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return nil, fmt.Errorf("%w: bad status line %q", ErrMalformedResponse, line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return nil, fmt.Errorf("%w: bad status code %q", ErrMalformedResponse, parts[1])
	}
	resp := &Response{StatusCode: status, Header: map[string]string{}}
	if err := readHeaders(br, resp.Header); err != nil {
		return nil, err
	}
	n := 0
	if cl, ok := resp.Header["content-length"]; ok {
		n, err = strconv.Atoi(cl)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: bad content-length %q", ErrMalformedResponse, cl)
		}
		if n > maxBodyLen {
			return nil, ErrBodyTooLarge
		}
	}
	resp.Body = make([]byte, n)
	if _, err := io.ReadFull(br, resp.Body); err != nil {
		return nil, err
	}
	return resp, nil
}

func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLineLen {
		return "", ErrMalformedRequest
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func readHeaders(br *bufio.Reader, into map[string]string) error {
	for i := 0; i < maxHeaderLines; i++ {
		line, err := readLine(br)
		if err != nil {
			return err
		}
		if line == "" {
			return nil
		}
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return fmt.Errorf("%w: bad header line %q", ErrMalformedRequest, line)
		}
		into[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	return fmt.Errorf("%w: too many header lines", ErrMalformedRequest)
}

// StatusText returns the reason phrase for the status codes the study uses.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 307:
		return "Temporary Redirect"
	case 308:
		return "Permanent Redirect"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	default:
		return "Status"
	}
}

// Get performs one GET over an established connection (plain or TLS) and
// parses the response.
func Get(conn net.Conn, host, path string) (*Response, error) {
	if err := WriteRequest(conn, "GET", host, path); err != nil {
		return nil, err
	}
	return readPooled(conn)
}
