package httpsim

import (
	"bufio"
	"bytes"
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"repro/internal/simnet"
)

func pipePair() (client, server *simnet.Conn) {
	return simnet.Pipe(
		simnet.Addr{AP: netip.MustParseAddrPort("10.0.0.1:5000")},
		simnet.Addr{AP: netip.MustParseAddrPort("192.0.2.1:80")},
	)
}

func TestRequestRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, "GET", "www.agency.gov", "/services"); err != nil {
		t.Fatal(err)
	}
	req, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Path != "/services" || req.Host != "www.agency.gov" {
		t.Errorf("req = %+v", req)
	}
}

func TestRequestDefaultPath(t *testing.T) {
	var buf bytes.Buffer
	WriteRequest(&buf, "GET", "h.gov", "")
	req, err := ReadRequest(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if req.Path != "/" {
		t.Errorf("path = %q, want /", req.Path)
	}
}

func TestResponseRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("<html>hello</html>")
	hdr := map[string]string{"Content-Type": "text/html", "Strict-Transport-Security": "max-age=31536000"}
	if err := WriteResponse(&buf, 200, hdr, body); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !bytes.Equal(resp.Body, body) {
		t.Errorf("resp = %+v", resp)
	}
	if !resp.HSTS() {
		t.Error("HSTS header lost")
	}
}

func TestRedirectResponse(t *testing.T) {
	var buf bytes.Buffer
	WriteResponse(&buf, 301, map[string]string{"Location": "https://www.agency.gov/"}, nil)
	resp, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.IsRedirect() {
		t.Error("301 not classified as redirect")
	}
	if resp.Location() != "https://www.agency.gov/" {
		t.Errorf("Location = %q", resp.Location())
	}
}

func TestReadResponseMalformed(t *testing.T) {
	cases := []string{
		"garbage\r\n\r\n",
		"HTTP/1.1 abc OK\r\n\r\n",
		"HTTP/1.1 200 OK\r\nBadHeaderNoColon\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\nshort",
	}
	for _, raw := range cases {
		if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("accepted malformed response %q", raw)
		}
	}
}

func TestReadRequestMalformed(t *testing.T) {
	for _, raw := range []string{"NOPE\r\n\r\n", "GET /\r\n\r\n", "GET / FTP/1.0\r\n\r\n"} {
		if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err == nil {
			t.Errorf("accepted malformed request %q", raw)
		}
	}
}

func TestBodyTooLarge(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 99999999\r\n\r\n"
	if _, err := ReadResponse(bufio.NewReader(strings.NewReader(raw))); err != ErrBodyTooLarge {
		t.Errorf("err = %v, want ErrBodyTooLarge", err)
	}
}

func TestGetOverSimnetConn(t *testing.T) {
	client, server := pipePair()
	go func() {
		defer server.Close()
		req, err := ReadRequest(bufio.NewReader(server))
		if err != nil || req.Host != "www.agency.gov" {
			WriteResponse(server, 500, nil, nil)
			return
		}
		WriteResponse(server, 200, map[string]string{"Content-Type": "text/html"}, RenderPage("Agency", nil))
	}()
	resp, err := Get(client, "www.agency.gov", "/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if !bytes.Contains(resp.Body, []byte("Agency")) {
		t.Error("body missing title")
	}
}

func TestRenderAndExtractLinks(t *testing.T) {
	links := []string{"http://a.gov.br/", "https://b.gouv.fr/page", "/relative"}
	body := RenderPage("Portal", links)
	got := ExtractLinks(body)
	if !reflect.DeepEqual(got, links) {
		t.Errorf("ExtractLinks = %v, want %v", got, links)
	}
}

func TestExtractLinksVariants(t *testing.T) {
	html := `<a href='http://single.gov.br/x'>a</a>
	<A HREF="http://upper.gov.br">b</A>
	<a data-x=1 href=http://bare.gov.br/y>c</a>
	<a href="">empty</a>
	<a href="#frag">frag</a>`
	got := ExtractLinks([]byte(html))
	want := []string{"http://single.gov.br/x", "http://upper.gov.br", "http://bare.gov.br/y", "#frag"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ExtractLinks = %v, want %v", got, want)
	}
}

func TestExtractLinksMalformed(t *testing.T) {
	// An unterminated quote must not loop or panic.
	got := ExtractLinks([]byte(`<a href="http://x.gov`))
	if len(got) != 0 {
		t.Errorf("got %v from unterminated href", got)
	}
	if got := ExtractLinks([]byte(`href=`)); len(got) != 0 {
		t.Errorf("got %v from dangling href", got)
	}
}

func TestHostOf(t *testing.T) {
	cases := map[string]string{
		"https://a.gov.br/page":   "a.gov.br",
		"http://B.GOV.BR":         "b.gov.br",
		"//proto.rel.gov":         "proto.rel.gov",
		"bare.gov.br/deep/path":   "bare.gov.br",
		"http://host.gov:8443/x":  "host.gov",
		"/relative/path":          "",
		"#fragment":               "",
		"?query=1":                "",
		"nodots":                  "",
		"https://x.gov.br?q=1":    "x.gov.br",
		"https://y.gov.br#anchor": "y.gov.br",
	}
	for link, want := range cases {
		if got := HostOf(link); got != want {
			t.Errorf("HostOf(%q) = %q, want %q", link, got, want)
		}
	}
}

func TestStatusText(t *testing.T) {
	if StatusText(200) != "OK" || StatusText(301) != "Moved Permanently" {
		t.Error("status text wrong")
	}
	if StatusText(418) == "" {
		t.Error("unknown status renders empty")
	}
}

func TestEscapeHTMLInRenderedPage(t *testing.T) {
	body := string(RenderPage(`<script>"x"&y`, nil))
	if strings.Contains(body, "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(body, "&lt;script&gt;") {
		t.Error("escaped form missing")
	}
}

func TestPostRoundtrip(t *testing.T) {
	client, server := pipePair()
	go func() {
		defer server.Close()
		req, err := ReadRequest(bufio.NewReader(server))
		if err != nil || req.Method != "POST" || string(req.Body) != `{"a":1}` {
			WriteResponse(server, 500, nil, []byte("bad request"))
			return
		}
		WriteResponse(server, 200, map[string]string{"Content-Type": "application/json"}, []byte(`{"ok":true}`))
	}()
	resp, err := Post(client, "api.gov", "/endpoint", "application/json", []byte(`{"a":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || string(resp.Body) != `{"ok":true}` {
		t.Errorf("resp = %d %q", resp.StatusCode, resp.Body)
	}
}

func TestReadRequestBodyLimits(t *testing.T) {
	raw := "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 99999999\r\n\r\n"
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err != ErrBodyTooLarge {
		t.Errorf("err = %v, want ErrBodyTooLarge", err)
	}
	raw = "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: -4\r\n\r\n"
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Error("negative content-length accepted")
	}
	raw = "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\n\r\nshort"
	if _, err := ReadRequest(bufio.NewReader(strings.NewReader(raw))); err == nil {
		t.Error("truncated body accepted")
	}
}
