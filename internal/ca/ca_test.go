package ca

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cert"
	"repro/internal/truststore"
	"repro/internal/verify"
)

var issueTime = time.Date(2020, 1, 15, 0, 0, 0, 0, time.UTC)

func newReg() *Registry { return NewRegistry(rand.New(rand.NewSource(100))) }

func TestRegistryContainsKeyCAs(t *testing.T) {
	reg := newReg()
	for _, name := range []string{
		"Let's Encrypt Authority X3",
		"Sectigo RSA Domain Validation Secure Server CA",
		"AlphaSSL CA - SHA256 - G2",
		"QuoVadis Global SSL ICA G3",
		"Encryption Everywhere DV TLS CA - G1",
		"CA134100031",
		"CA131100001",
	} {
		if _, ok := reg.Lookup(name); !ok {
			t.Errorf("missing CA %q", name)
		}
	}
}

func TestIssueProducesVerifiableChain(t *testing.T) {
	reg := newReg()
	rng := rand.New(rand.NewSource(101))
	a := reg.MustLookup("Let's Encrypt Authority X3")
	key := cert.NewKey(rng, cert.KeyRSA, 2048)
	chain := a.Issue(Request{
		Hostnames: []string{"portal.gov.br"},
		Key:       key,
		NotBefore: issueTime,
	})
	if len(chain) != 2 {
		t.Fatalf("chain length = %d", len(chain))
	}
	store := reg.BuildStore("apple", AppleCounts, rng)
	v := &verify.Verifier{Store: store, Now: issueTime.AddDate(0, 1, 0)}
	res := v.Verify(chain, "portal.gov.br")
	if !res.Valid() {
		t.Fatalf("issued chain invalid: %v (%s)", res.Code, res.Detail)
	}
}

func TestIssueDefaultLifetime(t *testing.T) {
	reg := newReg()
	rng := rand.New(rand.NewSource(102))
	a := reg.MustLookup("Let's Encrypt Authority X3")
	chain := a.Issue(Request{Hostnames: []string{"a.gov.br"}, Key: cert.NewKey(rng, cert.KeyRSA, 2048), NotBefore: issueTime})
	if got := chain[0].ValidityDays(); got != 90 {
		t.Errorf("Let's Encrypt lifetime = %d days, want 90", got)
	}
}

func TestIssueLifetimeOverride(t *testing.T) {
	reg := newReg()
	rng := rand.New(rand.NewSource(103))
	a := reg.MustLookup("DigiCert SHA2 Secure Server CA")
	chain := a.Issue(Request{
		Hostnames: []string{"a.gov.br"},
		Key:       cert.NewKey(rng, cert.KeyRSA, 2048),
		NotBefore: issueTime,
		Lifetime:  10 * 365 * 24 * time.Hour, // the §5.3.1 misconfiguration
	})
	if got := chain[0].ValidityDays(); got != 3650 {
		t.Errorf("lifetime = %d days, want 3650", got)
	}
}

func TestIssueSerialsUnique(t *testing.T) {
	reg := newReg()
	rng := rand.New(rand.NewSource(104))
	a := reg.MustLookup("Let's Encrypt Authority X3")
	seen := map[uint64]bool{}
	for i := 0; i < 50; i++ {
		c := a.Issue(Request{Hostnames: []string{"x.gov.br"}, Key: cert.NewKey(rng, cert.KeyRSA, 2048), NotBefore: issueTime})[0]
		if seen[c.SerialNumber] {
			t.Fatalf("duplicate serial %d", c.SerialNumber)
		}
		seen[c.SerialNumber] = true
	}
}

func TestIssueEVPolicy(t *testing.T) {
	reg := newReg()
	rng := rand.New(rand.NewSource(105))
	evCA := reg.MustLookup("DigiCert SHA2 Extended Validation Server CA")
	chain := evCA.Issue(Request{
		Hostnames:    []string{"treasury.gov"},
		Key:          cert.NewKey(rng, cert.KeyRSA, 2048),
		NotBefore:    issueTime,
		EV:           true,
		Organization: "Department of the Treasury",
	})
	if len(chain[0].PolicyOIDs) != 1 {
		t.Fatalf("EV policy OIDs = %v", chain[0].PolicyOIDs)
	}
	store := reg.BuildStore("apple", AppleCounts, rng)
	v := &verify.Verifier{Store: store, Now: issueTime.AddDate(0, 1, 0)}
	res := v.Verify(chain, "treasury.gov")
	if !res.Valid() || !res.EV {
		t.Errorf("EV chain: valid=%v ev=%v", res.Valid(), res.EV)
	}

	// DV CAs must not emit EV policies even when asked.
	dv := reg.MustLookup("Let's Encrypt Authority X3")
	dvChain := dv.Issue(Request{Hostnames: []string{"x.gov"}, Key: cert.NewKey(rng, cert.KeyRSA, 2048), NotBefore: issueTime, EV: true})
	if len(dvChain[0].PolicyOIDs) != 0 {
		t.Error("DV CA issued EV policy OID")
	}
}

func TestDistrustedCAChainsFail(t *testing.T) {
	reg := newReg()
	rng := rand.New(rand.NewSource(106))
	npki := reg.MustLookup("CA134100031")
	chain := npki.Issue(Request{Hostnames: []string{"minwon.go.kr"}, Key: cert.NewKey(rng, cert.KeyRSA, 2048), NotBefore: issueTime})
	store := reg.BuildStore("apple", AppleCounts, rng)
	v := &verify.Verifier{Store: store, Now: issueTime.AddDate(0, 1, 0)}
	res := v.Verify(chain, "minwon.go.kr")
	if res.Code != verify.UnableToGetLocalIssuer {
		t.Errorf("NPKI chain = %v, want UnableToGetLocalIssuer", res.Code)
	}
}

func TestSelfSignedHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	key := cert.NewKey(rng, cert.KeyRSA, 2048)
	c := SelfSigned(key, []string{"localhost"}, issueTime, Lifetime2y, cert.SHA256WithRSA)
	if !c.SelfSigned() {
		t.Fatal("SelfSigned helper output not self-signed")
	}
	store := truststore.New("empty")
	v := &verify.Verifier{Store: store, Now: issueTime.AddDate(0, 1, 0)}
	if res := v.Verify([]*cert.Certificate{c}, "site.gov.xx"); res.Code != verify.SelfSignedLeaf {
		t.Errorf("self-signed verdict = %v", res.Code)
	}
}

func TestBuildStoreCounts(t *testing.T) {
	reg := newReg()
	rng := rand.New(rand.NewSource(108))
	for _, tc := range []struct {
		name   string
		counts StoreCounts
	}{
		{"apple", AppleCounts},
		{"microsoft", MicrosoftCounts},
		{"nss", NSSCounts},
	} {
		s := reg.BuildStore(tc.name, tc.counts, rng)
		if s.Len() != tc.counts.Roots {
			t.Errorf("%s roots = %d, want %d", tc.name, s.Len(), tc.counts.Roots)
		}
		if s.OwnerCount() != tc.counts.Owners {
			t.Errorf("%s owners = %d, want %d", tc.name, s.OwnerCount(), tc.counts.Owners)
		}
	}
}

func TestBuildDefaultStores(t *testing.T) {
	reg := newReg()
	stores := reg.BuildDefaultStores(rand.New(rand.NewSource(109)))
	if len(stores) != 3 {
		t.Fatalf("stores = %d", len(stores))
	}
	if stores["apple"].Len() >= stores["microsoft"].Len() {
		t.Error("Apple store should be smaller than Microsoft's")
	}
}

func TestDistrustedExcludedFromStores(t *testing.T) {
	reg := newReg()
	rng := rand.New(rand.NewSource(110))
	s := reg.BuildStore("apple", AppleCounts, rng)
	npki := reg.MustLookup("CA134100031")
	if s.Contains(npki.Root) {
		t.Error("distrusted NPKI root present in store")
	}
	le := reg.MustLookup("Let's Encrypt Authority X3")
	if !s.Contains(le.Root) {
		t.Error("Let's Encrypt root missing from store")
	}
}

func TestNSSCountryJurisdiction(t *testing.T) {
	// §7.3.2: 42 US-registered CAs; Bermuda and Spain next with 6 each;
	// the US hosts 7x more trusted CAs than the runner-up countries.
	if NSSOwnerCountries["US"] != 42 {
		t.Errorf("US NSS CAs = %d, want 42", NSSOwnerCountries["US"])
	}
	if NSSOwnerCountries["BM"] != 6 || NSSOwnerCountries["ES"] != 6 {
		t.Errorf("BM/ES = %d/%d, want 6/6", NSSOwnerCountries["BM"], NSSOwnerCountries["ES"])
	}
	for cc, n := range NSSOwnerCountries {
		if cc != "US" && n > 6 {
			t.Errorf("country %s has %d CAs, exceeding the runner-up count", cc, n)
		}
	}
	if NSSOwnerCountries["US"] != 7*NSSOwnerCountries["BM"] {
		t.Errorf("US is not 7x the runner-up: %d vs %d", NSSOwnerCountries["US"], NSSOwnerCountries["BM"])
	}
}

func TestRegistryDeterminism(t *testing.T) {
	a := NewRegistry(rand.New(rand.NewSource(7)))
	b := NewRegistry(rand.New(rand.NewSource(7)))
	ca1 := a.MustLookup("Let's Encrypt Authority X3")
	ca2 := b.MustLookup("Let's Encrypt Authority X3")
	if ca1.Root.Fingerprint() != ca2.Root.Fingerprint() {
		t.Error("same seed produced different registries")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup(bogus) did not panic")
		}
	}()
	newReg().MustLookup("No Such CA")
}

func TestIssuePanicsWithoutHostnames(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Issue without hostnames did not panic")
		}
	}()
	reg := newReg()
	reg.MustLookup("Let's Encrypt Authority X3").Issue(Request{})
}
