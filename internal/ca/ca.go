// Package ca models the certificate-authority ecosystem of the study: the
// issuing CAs that appear in the paper's figures (Let's Encrypt, DigiCert,
// Sectigo, GlobalSign, the South Korean NPKI sub-CAs, ...), their root
// hierarchies, their trust-store membership, and an issuance engine that
// mints leaf certificates with configurable lifetimes, keys, wildcard names
// and EV policies.
package ca

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/cert"
	"repro/internal/truststore"
)

// Profile describes one issuing CA.
type Profile struct {
	// Name is the issuer common name as it appears in certificates and in
	// the paper's figures (e.g. "Let's Encrypt Authority X3").
	Name string
	// Owner is the root CA owner organization.
	Owner string
	// Country is where the owner is registered (drives the §7.3.2
	// jurisdiction analysis).
	Country string
	// Free marks zero-cost issuance (Let's Encrypt, cPanel, CloudFlare).
	Free bool
	// EV marks CAs that issue Extended Validation certificates.
	EV bool
	// EVPolicyOID is the CA's EV policy identifier, when EV is true.
	EVPolicyOID string
	// SigAlg is the algorithm the CA signs leaves with.
	SigAlg cert.SignatureAlgorithm
	// KeyType and KeyBits describe the CA's own key.
	KeyType cert.KeyType
	KeyBits int
	// Distrusted marks CAs removed from all major trust stores (the NPKI
	// sub-CAs of §6.2/§6.3). Their chains fail with "unable to get local
	// issuer certificate".
	Distrusted bool
	// NotInApple marks CAs trusted by Microsoft and NSS but absent from
	// the Apple store — the §4.3 "invalid in our scans but valid on some
	// browsers" population.
	NotInApple bool
	// DefaultLifetime is the validity period of correctly issued leaves.
	DefaultLifetime time.Duration
}

// Authority is a Profile with minted root and intermediate certificates.
type Authority struct {
	Profile
	Root         *cert.Certificate
	Intermediate *cert.Certificate
	rootKey      cert.KeyID
	interKey     cert.KeyID
	serial       uint64
}

// Registry holds every authority, indexed by issuing-CA name.
type Registry struct {
	byName map[string]*Authority
	names  []string
}

// NewRegistry mints root/intermediate hierarchies for every built-in CA
// profile using the supplied deterministic source.
func NewRegistry(r *rand.Rand) *Registry {
	reg := &Registry{byName: make(map[string]*Authority)}
	base := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, p := range BuiltinProfiles() {
		rootKey := cert.NewKey(r, p.KeyType, rootBits(p))
		root := &cert.Certificate{
			SerialNumber:       r.Uint64(),
			Subject:            cert.Name{CommonName: p.Owner + " Root CA", Organization: p.Owner, Country: p.Country},
			Issuer:             cert.Name{CommonName: p.Owner + " Root CA", Organization: p.Owner, Country: p.Country},
			NotBefore:          base,
			NotAfter:           base.AddDate(30, 0, 0),
			PublicKey:          rootKey,
			SignatureAlgorithm: p.SigAlg,
			IsCA:               true,
		}
		root.Sign(rootKey.ID)

		interKey := cert.NewKey(r, p.KeyType, p.KeyBits)
		inter := &cert.Certificate{
			SerialNumber:       r.Uint64(),
			Subject:            cert.Name{CommonName: p.Name, Organization: p.Owner, Country: p.Country},
			Issuer:             root.Subject,
			NotBefore:          base.AddDate(2, 0, 0),
			NotAfter:           base.AddDate(22, 0, 0),
			PublicKey:          interKey,
			SignatureAlgorithm: p.SigAlg,
			IsCA:               true,
		}
		inter.Sign(rootKey.ID)

		a := &Authority{
			Profile:      p,
			Root:         root,
			Intermediate: inter,
			rootKey:      rootKey.ID,
			interKey:     interKey.ID,
		}
		reg.byName[p.Name] = a
		reg.names = append(reg.names, p.Name)
	}
	sort.Strings(reg.names)
	return reg
}

// Lookup returns the authority with the given issuing-CA name.
func (r *Registry) Lookup(name string) (*Authority, bool) {
	a, ok := r.byName[name]
	return a, ok
}

// MustLookup is Lookup for names known to exist; it panics otherwise.
func (r *Registry) MustLookup(name string) *Authority {
	a, ok := r.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("ca: unknown authority %q", name))
	}
	return a
}

// Names returns every authority name, sorted.
func (r *Registry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Authorities returns every authority sorted by name.
func (r *Registry) Authorities() []*Authority {
	out := make([]*Authority, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, r.byName[n])
	}
	return out
}

// Request describes a certificate issuance.
type Request struct {
	// Hostnames become the SAN entries; the first is the subject CN.
	Hostnames []string
	// Key is the host's public key; mint one with cert.NewKey.
	Key cert.PublicKey
	// NotBefore is the issuance time.
	NotBefore time.Time
	// Lifetime overrides the CA's default validity period when non-zero.
	// The misconfigured 10/20/30/50/100-year certificates of §5.3.1 are
	// produced through this override.
	Lifetime time.Duration
	// EV requests an Extended Validation certificate; ignored unless the
	// CA issues EV.
	EV bool
	// Organization is embedded in the subject for EV certificates.
	Organization string
	// Country is the subject country.
	Country string
	// Serial, when non-zero, overrides the authority's serial counter.
	// Parallel world builders partition the serial space per worker so
	// issuance needs no lock; zero keeps the counter behaviour.
	Serial uint64
}

// Issue mints a leaf under the authority and returns the served chain
// (leaf, intermediate). The authority's serial counter guarantees unique
// serial numbers per CA. The request's Hostnames slice is retained as the
// leaf's SAN list; callers must not modify it afterwards.
func (a *Authority) Issue(req Request) []*cert.Certificate {
	if len(req.Hostnames) == 0 {
		panic("ca: issuance request without hostnames")
	}
	lifetime := req.Lifetime
	if lifetime == 0 {
		lifetime = a.DefaultLifetime
	}
	serial := req.Serial
	if serial == 0 {
		a.serial++
		serial = a.serial
	}
	leaf := &cert.Certificate{
		SerialNumber: serial,
		Subject: cert.Name{
			CommonName:   req.Hostnames[0],
			Organization: req.Organization,
			Country:      req.Country,
		},
		Issuer:             a.Intermediate.Subject,
		DNSNames:           req.Hostnames,
		NotBefore:          req.NotBefore,
		NotAfter:           req.NotBefore.Add(lifetime),
		PublicKey:          req.Key,
		SignatureAlgorithm: a.SigAlg,
	}
	if req.EV && a.EV {
		leaf.PolicyOIDs = []string{a.EVPolicyOID}
	}
	leaf.Sign(a.interKey)
	return []*cert.Certificate{leaf, a.Intermediate}
}

// SelfSigned mints a self-signed certificate outside any CA hierarchy —
// the "localhost" style certificates behind §5.3.3's most-reused chains.
// The hostnames slice is retained as the SAN list; callers must not modify
// it afterwards.
func SelfSigned(key cert.PublicKey, hostnames []string, notBefore time.Time, lifetime time.Duration, alg cert.SignatureAlgorithm) *cert.Certificate {
	cn := "localhost"
	if len(hostnames) > 0 {
		cn = hostnames[0]
	}
	c := &cert.Certificate{
		Subject:            cert.Name{CommonName: cn},
		Issuer:             cert.Name{CommonName: cn},
		DNSNames:           hostnames,
		NotBefore:          notBefore,
		NotAfter:           notBefore.Add(lifetime),
		PublicKey:          key,
		SignatureAlgorithm: alg,
	}
	c.Sign(key.ID)
	return c
}

func rootBits(p Profile) int {
	if p.KeyType == cert.KeyECDSA {
		return 384
	}
	return 4096
}

// Store construction ---------------------------------------------------

// StoreCounts fixes the sizes of the three modeled trust stores to the
// paper's measurements (§3.2).
type StoreCounts struct {
	Roots  int
	Owners int
}

// Paper-measured trust store sizes.
var (
	AppleCounts     = StoreCounts{Roots: 174, Owners: 69}
	MicrosoftCounts = StoreCounts{Roots: 402, Owners: 133}
	NSSCounts       = StoreCounts{Roots: 152, Owners: 52}
)

// BuildStore assembles a trust store containing every non-distrusted
// builtin authority's root plus deterministic filler roots to reach the
// paper-measured totals. EV policy OIDs of EV-issuing authorities are
// trusted, mirroring Mozilla's certverifier list.
func (r *Registry) BuildStore(name string, counts StoreCounts, rng *rand.Rand) *truststore.Store {
	s := truststore.New(name)
	owners := map[string]bool{}
	for _, a := range r.Authorities() {
		if a.Distrusted {
			continue
		}
		if a.NotInApple && name == "apple" {
			continue
		}
		s.AddRoot(a.Root, a.Owner)
		owners[a.Owner] = true
		if a.EV {
			s.TrustEVPolicy(a.EVPolicyOID)
		}
	}
	fillerOwners := counts.Owners - len(owners)
	if fillerOwners < 1 {
		fillerOwners = 1
	}
	for i := 0; s.Len() < counts.Roots; i++ {
		ownerName := name + " filler owner " + strconv.Itoa(i%fillerOwners)
		owners[ownerName] = true
		key := cert.NewKey(rng, cert.KeyRSA, 4096)
		cn := name + " Filler Root " + strconv.Itoa(i)
		root := &cert.Certificate{
			SerialNumber:       rng.Uint64(),
			Subject:            cert.Name{CommonName: cn, Organization: ownerName},
			Issuer:             cert.Name{CommonName: cn, Organization: ownerName},
			NotBefore:          time.Date(2005, 1, 1, 0, 0, 0, 0, time.UTC),
			NotAfter:           time.Date(2045, 1, 1, 0, 0, 0, 0, time.UTC),
			PublicKey:          key,
			SignatureAlgorithm: cert.SHA256WithRSA,
			IsCA:               true,
		}
		root.Sign(key.ID)
		s.AddRoot(root, ownerName)
	}
	return s
}

// BuildDefaultStores creates the three paper trust stores.
func (r *Registry) BuildDefaultStores(rng *rand.Rand) map[string]*truststore.Store {
	return map[string]*truststore.Store{
		"apple":     r.BuildStore("apple", AppleCounts, rng),
		"microsoft": r.BuildStore("microsoft", MicrosoftCounts, rng),
		"nss":       r.BuildStore("nss", NSSCounts, rng),
	}
}
