package ca

import (
	"time"

	"repro/internal/cert"
)

// Lifetimes used by correctly configured CAs (§3.1, §5.3.1).
const (
	Lifetime90d = 90 * 24 * time.Hour
	Lifetime1y  = 365 * 24 * time.Hour
	Lifetime2y  = 730 * 24 * time.Hour
	// Lifetime825d is the CA/Browser-Forum ballot-193 maximum.
	Lifetime825d = 825 * 24 * time.Hour
)

// BuiltinProfiles returns the CA ecosystem of the study: the top issuers of
// Figure 2 (worldwide), Figure 8 (USA) and Figure 11 (ROK), the EV issuers
// of Figures A.2/A.3/A.6, legacy weak-signature CAs, and the distrusted
// South Korean NPKI sub-CAs.
func BuiltinProfiles() []Profile {
	rsa256 := func(name, owner, country string, free bool, life time.Duration) Profile {
		return Profile{Name: name, Owner: owner, Country: country, Free: free,
			SigAlg: cert.SHA256WithRSA, KeyType: cert.KeyRSA, KeyBits: 2048, DefaultLifetime: life}
	}
	ev := func(p Profile, oid string) Profile {
		p.EV = true
		p.EVPolicyOID = oid
		p.DefaultLifetime = Lifetime2y
		return p
	}
	return []Profile{
		// --- Major worldwide DV issuers (Figure 2) ---
		rsa256("Let's Encrypt Authority X3", "Let's Encrypt", "US", true, Lifetime90d),
		rsa256("cPanel, Inc. Certification Authority", "Sectigo", "GB", true, Lifetime90d),
		rsa256("Sectigo RSA Domain Validation Secure Server CA", "Sectigo", "GB", false, Lifetime1y),
		rsa256("Sectigo RSA Organization Validation Secure Server CA", "Sectigo", "GB", false, Lifetime1y),
		rsa256("COMODO RSA Domain Validation Secure Server CA", "Sectigo", "GB", false, Lifetime2y),
		rsa256("DigiCert SHA2 Secure Server CA", "DigiCert", "US", false, Lifetime2y),
		rsa256("DigiCert SHA2 High Assurance Server CA", "DigiCert", "US", false, Lifetime2y),
		rsa256("Encryption Everywhere DV TLS CA - G1", "DigiCert", "US", true, Lifetime1y),
		rsa256("RapidSSL RSA CA 2018", "DigiCert", "US", false, Lifetime1y),
		rsa256("GeoTrust RSA CA 2018", "DigiCert", "US", false, Lifetime2y),
		rsa256("Thawte RSA CA 2018", "DigiCert", "US", false, Lifetime2y),
		rsa256("GlobalSign CloudSSL CA - SHA256 - G3", "GlobalSign", "BE", false, Lifetime1y),
		rsa256("GlobalSign RSA OV SSL CA 2018", "GlobalSign", "BE", false, Lifetime2y),
		rsa256("AlphaSSL CA - SHA256 - G2", "GlobalSign", "BE", false, Lifetime1y),
		rsa256("Go Daddy Secure Certificate Authority - G2", "GoDaddy", "US", false, Lifetime2y),
		rsa256("Starfield Secure Certificate Authority - G2", "GoDaddy", "US", false, Lifetime2y),
		rsa256("Amazon Server CA 1B", "Amazon", "US", true, Lifetime1y),
		rsa256("Entrust Certification Authority - L1K", "Entrust", "US", false, Lifetime2y),
		rsa256("Network Solutions OV Server CA 2", "Network Solutions", "US", false, Lifetime2y),
		rsa256("Microsoft IT TLS CA 5", "Microsoft", "US", false, Lifetime2y),
		rsa256("QuoVadis Global SSL ICA G3", "QuoVadis", "BM", false, Lifetime2y),
		rsa256("Certum Domain Validation CA SHA2", "Asseco", "PL", false, Lifetime1y),
		rsa256("Gandi Standard SSL CA 2", "Sectigo", "FR", false, Lifetime1y),
		rsa256("Actalis Organization Validated Server CA G3", "Actalis", "IT", false, Lifetime1y),
		rsa256("SwissSign Server Gold CA 2014 - G22", "SwissSign", "CH", false, Lifetime2y),
		rsa256("TrustAsia TLS RSA CA", "TrustAsia", "CN", false, Lifetime1y),
		rsa256("WoTrus DV Server CA", "WoTrus", "CN", false, Lifetime1y),
		rsa256("CFCA EV OCA", "CFCA", "CN", false, Lifetime2y),
		rsa256("TeleSec ServerPass Class 2 CA", "Deutsche Telekom", "DE", false, Lifetime2y),
		rsa256("Buypass Class 2 CA 5", "Buypass", "NO", true, Lifetime90d),
		rsa256("Certigna Services CA", "Certigna", "FR", false, Lifetime2y),
		rsa256("HARICA SSL RSA SubCA R3", "HARICA", "GR", false, Lifetime1y),
		rsa256("Izenpe SSL CA", "Izenpe", "ES", false, Lifetime2y),
		rsa256("ACCV CA-120", "ACCV", "ES", false, Lifetime2y),
		rsa256("AC FNMT Usuarios", "FNMT-RCM", "ES", false, Lifetime2y),
		rsa256("Taiwan GRCA Government SSL CA", "Taiwan GRCA", "TW", false, Lifetime2y),
		rsa256("eMudhra emSign SSL CA", "eMudhra", "IN", false, Lifetime1y),

		// --- ECDSA issuers (high-validity cluster of Figure 4) ---
		{Name: "CloudFlare Inc ECC CA-2", Owner: "Cloudflare", Country: "US", Free: true,
			SigAlg: cert.ECDSAWithSHA256, KeyType: cert.KeyECDSA, KeyBits: 256, DefaultLifetime: Lifetime1y},
		{Name: "DigiCert ECC Secure Server CA", Owner: "DigiCert", Country: "US",
			SigAlg: cert.ECDSAWithSHA384, KeyType: cert.KeyECDSA, KeyBits: 384, DefaultLifetime: Lifetime1y},
		{Name: "Sectigo ECC Domain Validation Secure Server CA", Owner: "Sectigo", Country: "GB",
			SigAlg: cert.ECDSAWithSHA256, KeyType: cert.KeyECDSA, KeyBits: 256, DefaultLifetime: Lifetime1y},
		{Name: "GlobalSign ECC OV SSL CA 2018", Owner: "GlobalSign", Country: "BE",
			SigAlg: cert.ECDSAWithSHA384, KeyType: cert.KeyECDSA, KeyBits: 384, DefaultLifetime: Lifetime1y},

		// --- Legacy weak-signature issuers (920 MD5/SHA1 sites, §5.3.2) ---
		{Name: "COMODO High-Assurance Secure Server CA", Owner: "Sectigo", Country: "GB",
			SigAlg: cert.SHA1WithRSA, KeyType: cert.KeyRSA, KeyBits: 2048, DefaultLifetime: Lifetime2y},
		{Name: "GeoTrust DV SSL CA", Owner: "DigiCert", Country: "US",
			SigAlg: cert.SHA1WithRSA, KeyType: cert.KeyRSA, KeyBits: 2048, DefaultLifetime: Lifetime2y},
		{Name: "Equifax Secure Certificate Authority", Owner: "GeoTrust Legacy", Country: "US",
			SigAlg: cert.SHA1WithRSA, KeyType: cert.KeyRSA, KeyBits: 1024, DefaultLifetime: Lifetime2y},
		{Name: "RSA Data Security Secure Server CA", Owner: "RSA Data Security", Country: "US",
			SigAlg: cert.MD5WithRSA, KeyType: cert.KeyRSA, KeyBits: 1024, DefaultLifetime: Lifetime2y},
		{Name: "D-TRUST SSL Class 3 CA 1 2009", Owner: "D-Trust", Country: "DE",
			SigAlg: cert.SHA256WithRSAPSS, KeyType: cert.KeyRSA, KeyBits: 2048, DefaultLifetime: Lifetime2y},

		// --- EV issuers (Figures A.2, A.3, A.6) ---
		ev(rsa256("DigiCert SHA2 Extended Validation Server CA", "DigiCert", "US", false, 0), "2.16.840.1.114412.2.1"),
		ev(rsa256("Sectigo RSA Extended Validation Secure Server CA", "Sectigo", "GB", false, 0), "1.3.6.1.4.1.6449.1.2.1.5.1"),
		ev(rsa256("GlobalSign Extended Validation CA - SHA256 - G3", "GlobalSign", "BE", false, 0), "1.3.6.1.4.1.4146.1.1"),
		ev(rsa256("Thawte EV RSA CA 2018", "DigiCert", "US", false, 0), "2.16.840.1.113733.1.7.48.1"),
		ev(rsa256("GeoTrust EV RSA CA 2018", "DigiCert", "US", false, 0), "2.16.840.1.113733.1.7.54"),
		ev(rsa256("Entrust Extended Validation CA - EVCA1", "Entrust", "US", false, 0), "2.16.840.1.114028.10.1.2"),
		ev(rsa256("Starfield EV Secure CA - G2", "GoDaddy", "US", false, 0), "2.16.840.1.114414.1.7.23.3"),
		ev(rsa256("Amazon EV Server CA 1B", "Amazon", "US", false, 0), "2.23.140.1.1"),

		// --- Trusted by Microsoft/NSS but not Apple (§4.3's conservative-
		// store gap: a small number of chains fail only in our scans) ---
		{Name: "e-Szigno TLS CA 2017", Owner: "Microsec", Country: "HU", NotInApple: true,
			SigAlg: cert.SHA256WithRSA, KeyType: cert.KeyRSA, KeyBits: 2048, DefaultLifetime: Lifetime1y},
		{Name: "Certinomis AA et Agents", Owner: "Certinomis", Country: "FR", NotInApple: true,
			SigAlg: cert.SHA256WithRSA, KeyType: cert.KeyRSA, KeyBits: 2048, DefaultLifetime: Lifetime2y},

		// --- Distrusted South Korean NPKI/GPKI sub-CAs (§6.2, §6.3) ---
		{Name: "CA134100031", Owner: "NPKI", Country: "KR", Distrusted: true,
			SigAlg: cert.SHA256WithRSA, KeyType: cert.KeyRSA, KeyBits: 2048, DefaultLifetime: Lifetime2y},
		{Name: "CA131100001", Owner: "NPKI", Country: "KR", Distrusted: true,
			SigAlg: cert.SHA256WithRSA, KeyType: cert.KeyRSA, KeyBits: 2048, DefaultLifetime: Lifetime2y},
		{Name: "GPKIRootCA1 Sub CA", Owner: "Korea GPKI", Country: "KR", Distrusted: true,
			SigAlg: cert.SHA256WithRSA, KeyType: cert.KeyRSA, KeyBits: 2048, DefaultLifetime: Lifetime2y},
	}
}

// NSSOwnerCountries reproduces the §7.3.2 jurisdiction analysis of the
// Mozilla NSS store: number of trusted root CA owners by country of
// registration. The USA hosts 7x more CA owners than the runners-up.
var NSSOwnerCountries = map[string]int{
	"US": 42, "BM": 6, "ES": 6, "TW": 4, "CN": 4, "IN": 4, "BE": 4,
	"GB": 3, "DE": 3, "FR": 3, "JP": 3, "CH": 2, "PL": 2, "IT": 2,
	"GR": 1, "NO": 1, "KR": 1, "NL": 1, "HU": 1, "TR": 1, "IL": 1,
}
