package report

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/crawler"
	"repro/internal/notify"
	"repro/internal/scanner"
)

func TestTableAlignment(t *testing.T) {
	tab := newTable("A", "Count")
	tab.row("first", "1")
	tab.row("second-longer", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows unaligned:\n%s", out)
	}
	if !strings.HasPrefix(lines[0], "A") {
		t.Errorf("header missing: %q", lines[0])
	}
}

func TestTable2Rendering(t *testing.T) {
	tab := analysis.Table2{
		Total: 100, HTTPOnly: 60, HTTPS: 40, Valid: 28, Invalid: 12,
		ByCategory: map[scanner.Category]int{
			scanner.CatHostnameMismatch: 5,
			scanner.CatExcSSLProto:      3,
			scanner.CatSelfSigned:       4,
		},
		Exceptions: 3,
	}
	out := Table2(tab)
	for _, want := range []string{"Total websites considered", "Hostname Mismatch", "Unsupported SSL Protocol", "100"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	out := Table1([]analysis.OverlapRow{{TopK: 1000, Majestic: 56, Cisco: 0, Tranco: 30}})
	if !strings.Contains(out, "Majestic") || !strings.Contains(out, "56") {
		t.Errorf("Table1 output:\n%s", out)
	}
}

func TestIssuersRendering(t *testing.T) {
	stats := []analysis.IssuerStats{
		{Issuer: "Let's Encrypt Authority X3", Total: 100, Valid: 80, Invalid: 20},
		{Issuer: "Other CA", Total: 10, Valid: 5, Invalid: 5},
	}
	out := Issuers("Figure 2: Top Cert Issuers", stats, 1)
	if !strings.Contains(out, "Let's Encrypt") {
		t.Error("issuer missing")
	}
	if strings.Contains(out, "Other CA") {
		t.Error("topN truncation ignored")
	}
}

func TestCrawlRendering(t *testing.T) {
	s := crawler.Stats{Levels: []crawler.LevelStats{
		{Level: 0, NewUnique: 10, CumulativeUnique: 10},
		{Level: 1, Visited: 10, Discovered: 25, NewUnique: 12, NewGov: 9, CumulativeUnique: 22, GrowthPct: 120},
	}}
	out := Crawl(s)
	if !strings.Contains(out, "Figure A.4") || !strings.Contains(out, "120.0") {
		t.Errorf("crawl render:\n%s", out)
	}
}

func TestEffectivenessRendering(t *testing.T) {
	out := Effectiveness(notify.Effectiveness{PreviouslyInvalid: 100, Fixed: 8, Unreachable: 10, StillInvalid: 82})
	if !strings.Contains(out, "8.00%") || !strings.Contains(out, "18.00%") {
		t.Errorf("effectiveness render:\n%s", out)
	}
}

func TestCAARendering(t *testing.T) {
	out := CAA(18, 18, 1300)
	if !strings.Contains(out, "1.38%") {
		t.Errorf("CAA render:\n%s", out)
	}
}
