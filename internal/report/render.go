package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/crawler"
	"repro/internal/geo"
	"repro/internal/notify"
	"repro/internal/resultset"
)

// Table1 renders the top-million overlap table.
func Table1(rows []analysis.OverlapRow) string {
	t := newTable("Top K", "Majestic", "Cisco", "Tranco")
	for _, r := range rows {
		t.row(n(r.TopK), n(r.Majestic), n(r.Cisco), n(r.Tranco))
	}
	return section("Table 1: Overlap of Government Website Dataset With Public Top Millions") + t.String()
}

// Table2 renders the worldwide validity-and-error breakdown.
func Table2(tab analysis.Table2) string {
	t := newTable("Category", "Count", "%")
	t.row("Total websites considered", n(tab.Total), "100")
	t.row("> Content served on HTTP only", n(tab.HTTPOnly), pctStr(tab.PctOfTotal(tab.HTTPOnly)))
	t.row("> Content served on HTTPS", n(tab.HTTPS), pctStr(tab.PctOfTotal(tab.HTTPS)))
	t.row(">   Valid HTTPS Certificates", n(tab.Valid), pctStr(tab.PctOfHTTPS(tab.Valid)))
	t.row(">   Invalid HTTPS Certificates", n(tab.Invalid), pctStr(tab.PctOfHTTPS(tab.Invalid)))
	for _, cat := range tab.InvalidCategoriesSorted() {
		count := tab.ByCategory[cat]
		var share float64
		if cat.IsException() {
			share = tab.PctOfExceptions(count)
		} else {
			share = tab.PctOfInvalid(count)
		}
		t.row(">     "+cat.String(), n(count), pctStr(share))
	}
	t.row("> Serving both schemes, no upgrade", n(tab.BothSchemes), pctStr(tab.PctOfTotal(tab.BothSchemes)))
	t.row("> Valid with HSTS", n(tab.HSTS), pctStr(tab.PctOfHTTPS(tab.HSTS)))
	return section("Table 2: Worldwide govt. sites by https validity and error") + t.String()
}

// Figure1 renders the per-country choropleth data (top rows by host count).
func Figure1(rows []analysis.CountryRow, topN int) string {
	sorted := append([]analysis.CountryRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Hosts > sorted[j].Hosts })
	if topN > 0 && topN < len(sorted) {
		sorted = sorted[:topN]
	}
	t := newTable("Country", "Hosts", "Avail%", "HTTPS%", "Valid%")
	for _, r := range sorted {
		name := r.Country
		if c, ok := geo.ByCode(r.Country); ok {
			name = c.Name
		}
		t.row(name, n(r.Hosts), f1(r.AvailablePct()), f1(r.HTTPSPct()), f1(r.ValidPct()))
	}
	return section("Figure 1: Worldwide view of Government Websites (per-country)") + t.String()
}

// Issuers renders a CA validity figure (Figures 2, 8, 11).
func Issuers(title string, stats []analysis.IssuerStats, topN int) string {
	t := newTable("Issuer", "Total", "Valid", "Invalid", "Invalid%")
	for _, s := range analysis.TopIssuers(stats, topN) {
		t.row(s.Issuer, n(s.Total), n(s.Valid), n(s.Invalid), f1(s.InvalidPct()))
	}
	return section(title) + t.String()
}

// KeyAlgo renders the three panels of Figures 4/9/12.
func KeyAlgo(title string, m analysis.KeyAlgoMatrix) string {
	var b strings.Builder
	b.WriteString(section(title))
	panel := func(name string, cells []analysis.KeyCell) {
		t := newTable(name, "Total", "Valid", "Valid%")
		for _, c := range cells {
			t.row(c.Label, n(c.Total), n(c.Valid), f1(c.ValidPct()))
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	panel("Host public key", m.ByHostKey)
	panel("CA signing algorithm", m.BySigAlgo)
	panel("Key / signing algorithm", m.Combined)
	return b.String()
}

// Durations renders the §5.3.1 lifetime analysis (Figures 3/10).
func Durations(title string, d analysis.DurationStats) string {
	var b strings.Builder
	b.WriteString(section(title))
	t := newTable("Metric", "Value")
	t.row("Valid certificates", n(len(d.ValidLifetimes)))
	t.row("Invalid certificates", n(len(d.InvalidLifetimes)))
	t.row("Max valid lifetime (days)", n(int(analysis.MaxLifetime(d.ValidLifetimes).Hours()/24)))
	t.row("Max invalid lifetime (days)", n(int(analysis.MaxLifetime(d.InvalidLifetimes).Hours()/24)))
	if len(d.InvalidLifetimes) > 0 {
		t.row("Invalid under 2y", pctStr(100*float64(d.InvalidUnder2y)/float64(len(d.InvalidLifetimes))))
		t.row("Invalid over 3y", pctStr(100*float64(d.InvalidOver3y)/float64(len(d.InvalidLifetimes))))
		t.row("Invalid multiple of 365d", pctStr(100*float64(d.Mult365)/float64(len(d.InvalidLifetimes))))
	}
	for _, years := range []int{10, 20, 30, 50, 100} {
		t.row(fmt.Sprintf("Issued for exactly %dy", years), n(d.Decades[years]))
	}
	t.row("Unix-epoch issue dates", n(d.EpochCerts))
	b.WriteString(t.String())
	return b.String()
}

// Hosting renders a hosting-validity figure (Figures 5/A.1).
func Hosting(title string, buckets []analysis.HostingBucket) string {
	t := newTable("Hosting", "Total", "HTTPS", "Valid", "Valid% of total")
	for _, b := range buckets {
		t.row(b.Label, n(b.Total), n(b.HTTPS), n(b.Valid), f1(b.ValidPctOfTotal()))
	}
	return section(title) + t.String()
}

// RankComparison renders Figures 6 and 7.
func RankComparison(rc analysis.RankComparison) string {
	var b strings.Builder
	b.WriteString(section("Figure 7: Valid https rate by top-million rank (50 bins)"))
	summary := newTable("Series", "N", "Mean rank", "Std rank", "Valid%", "Slope/100k")
	for _, s := range []analysis.RankSeries{rc.Gov, rc.Random, rc.Matched, rc.TopNonGov} {
		slope := "n/a"
		if s.FitErr == nil {
			slope = fmt.Sprintf("%+.3f", s.Fit.Slope*100000)
		}
		summary.row(s.Name, n(s.N), f1(s.MeanRank), f1(s.StdRank), f1(100*s.ValidRate), slope)
	}
	b.WriteString(summary.String())
	b.WriteByte('\n')

	b.WriteString(section("Figure 6: Validity by hosting, gov vs non-gov top million"))
	t := newTable("Series / hosting", "Total", "Valid", "Valid%")
	for _, s := range []analysis.RankSeries{rc.Gov, rc.Random, rc.Matched, rc.TopNonGov} {
		for _, h := range s.Hosting {
			t.row(s.Name+" / "+h.Label, n(h.Total), n(h.Valid), f1(h.ValidPctOfTotal()))
		}
	}
	b.WriteString(t.String())
	return b.String()
}

// RankBins renders the binned series of Figure 7 for plotting.
func RankBins(rc analysis.RankComparison) string {
	var b strings.Builder
	b.WriteString(section("Figure 7 series: per-bin valid-https rates"))
	t := newTable("Bin center", "Gov%", "Uniform%", "Matched%")
	for i := range rc.Gov.Bins {
		row := []string{f1(rc.Gov.Bins[i].Center)}
		for _, s := range []analysis.RankSeries{rc.Gov, rc.Random, rc.Matched} {
			if i < len(s.Bins) && s.Bins[i].Count > 0 {
				row = append(row, f1(100*s.Bins[i].Rate))
			} else {
				row = append(row, "-")
			}
		}
		t.row(row...)
	}
	b.WriteString(t.String())
	return b.String()
}

// KeyReuse renders §5.3.3.
func KeyReuse(s analysis.KeyReuseStats) string {
	var b strings.Builder
	b.WriteString(section("Section 5.3.3: Host public key pair reuse"))
	t := newTable("Metric", "Value")
	t.row("Certificates reused across >=2 hosts", n(len(s.Clusters)))
	t.row("Cross-country reused certificates", n(len(s.CrossCountry)))
	t.row("Hostnames in cross-country reuse", n(s.CrossCountryHosts))
	t.row("Widest certificate (countries)", n(s.MaxCountrySpan()))
	t.row("Valid cross-country reuse", n(s.ValidCrossCountry))
	spans := make([]int, 0, len(s.ByCountrySpan))
	for span := range s.ByCountrySpan {
		spans = append(spans, span)
	}
	sort.Ints(spans)
	for _, span := range spans {
		t.row(fmt.Sprintf("Certificates shared by %d countries", span), n(s.ByCountrySpan[span]))
	}
	b.WriteString(t.String())
	return b.String()
}

// Crawl renders Figure A.4.
func Crawl(stats crawler.Stats) string {
	t := newTable("Level", "Visited", "Discovered", "New unique", "New gov", "Cumulative", "Growth%")
	for _, l := range stats.Levels {
		t.row(n(l.Level), n(l.Visited), n(l.Discovered), n(l.NewUnique), n(l.NewGov), n(l.CumulativeUnique), f1(l.GrowthPct))
	}
	return section("Figure A.4: Crawler effectiveness per level") + t.String()
}

// CrossGov renders Figure A.5.
func CrossGov(s analysis.CrossGovStats) string {
	var b strings.Builder
	b.WriteString(section("Figure A.5: Cross-government links"))
	t := newTable("Metric", "Value")
	t.row("Countries linking to other governments", n(len(s.OutDegree)))
	t.row("Share linking to >=7 governments", pctStr(100*s.ShareLinkingAtLeast7))
	t.row("Top linker", s.TopLinker)
	t.row("Top linker out-degree", n(s.TopLinkerDegree))
	t.row("Countries linked by >=50 governments", n(s.HeavilyLinked))
	b.WriteString(t.String())
	return b.String()
}

// Campaign renders the §7.2 disclosure accounting and Figure 13's bands.
func Campaign(c *notify.CampaignResult) string {
	var b strings.Builder
	b.WriteString(section("Section 7.2: Notification & disclosure"))
	t := newTable("Metric", "Value")
	t.row("Reports built", n(len(c.Reports)))
	t.row("Emails sent", n(c.EmailsSent))
	t.row("Delivered", n(c.Delivered))
	t.row("Bounced (first attempt)", n(c.Bounced))
	t.row("Recovered via admin contact", n(c.RetriedOK))
	t.row("Automated acknowledgements", n(c.AutoAcks))
	t.row("Supportive responses", n(c.Supportive))
	t.row("Negative responses", n(c.Negative))
	t.row("Response rate", pctStr(100*c.ResponseRate()))
	t.row("Countries skipped (all https)", n(len(c.SkippedAllValid)))
	t.row("Territories excluded", n(len(c.SkippedTerritories)))
	b.WriteString(t.String())
	b.WriteByte('\n')

	b.WriteString(section("Figure 13: Response by country population rank"))
	bands := newTable("Population rank band", "Contacted", "Replied", "Reply%")
	ccs := make([]string, 0, len(c.Deliveries))
	for cc := range c.Deliveries {
		ccs = append(ccs, cc)
	}
	sort.Strings(ccs)
	type band struct {
		lo, hi int
	}
	for _, bd := range []band{{1, 50}, {51, 100}, {101, 200}, {201, 400}} {
		contacted, replied := 0, 0
		for _, cc := range ccs {
			d := c.Deliveries[cc]
			rank, ok := geo.PopulationRank(cc)
			if !ok || rank < bd.lo || rank > bd.hi || !d.Delivered {
				continue
			}
			contacted++
			if d.Response != notify.NoResponse && d.Response != notify.AutoAck {
				replied++
			}
		}
		rate := 0.0
		if contacted > 0 {
			rate = 100 * float64(replied) / float64(contacted)
		}
		bands.row(fmt.Sprintf("%d-%d", bd.lo, bd.hi), n(contacted), n(replied), f1(rate))
	}
	b.WriteString(bands.String())
	return b.String()
}

// Effectiveness renders §7.2.2.
func Effectiveness(e notify.Effectiveness) string {
	t := newTable("Metric", "Value")
	t.row("Previously invalid hosts re-scanned", n(e.PreviouslyInvalid))
	t.row("Fixed", n(e.Fixed))
	t.row("Now unreachable (removed)", n(e.Unreachable))
	t.row("Still invalid", n(e.StillInvalid))
	t.row("Improvement (conservative)", pctStr(100*e.ImprovementConservative()))
	t.row("Improvement (optimistic)", pctStr(100*e.ImprovementOptimistic()))
	return section("Section 7.2.2: Notification effectiveness") + t.String()
}

// CAA renders §5.3.4.
func CAA(withCAA, valid, totalHosts int) string {
	t := newTable("Metric", "Value")
	t.row("Domains with CAA records", n(withCAA))
	t.row("CAA record sets fully valid", n(valid))
	if totalHosts > 0 {
		t.row("Coverage", pctStr(100*float64(withCAA)/float64(totalHosts)))
	}
	return section("Section 5.3.4: CAA record adoption") + t.String()
}

// EV renders the EV statistics (§5.3 and Figures A.2/A.3/A.6 headers).
func EV(s analysis.EVStats) string {
	t := newTable("Metric", "Value")
	t.row("Hosts analyzed (with issuer info)", n(s.Analyzed))
	t.row("EV certificate hostnames", n(s.Hosts))
	if s.Analyzed > 0 {
		t.row("EV share", pctStr(100*float64(s.Hosts)/float64(s.Analyzed)))
	}
	t.row("Valid EV hosts", n(s.Valid))
	return section("EV certificate usage") + t.String()
}

// CaseStudyDatasets renders the Table A.1-style per-dataset breakdown.
type DatasetBreakdown struct {
	Name string
	Tab  analysis.Table2
}

// Datasets renders per-dataset Table 2 breakdowns (Tables A.1-A.4).
func Datasets(title string, rows []DatasetBreakdown) string {
	t := newTable("Dataset", "Total", "HTTP only", "HTTPS", "Valid", "Invalid", "Unavail")
	for _, d := range rows {
		t.row(d.Name, n(d.Tab.Total), n(d.Tab.HTTPOnly), n(d.Tab.HTTPS), n(d.Tab.Valid), n(d.Tab.Invalid), n(d.Tab.Unavailable))
	}
	return section(title) + t.String()
}

// Scan renders a one-line summary of a scan run (operational output).
func Scan(set *resultset.Set, took time.Duration) string {
	tab := analysis.ComputeTable2(set)
	return fmt.Sprintf("scanned %d hosts in %v: %d available, %d http-only, %d https (%d valid, %d invalid)\n",
		set.Len(), took.Round(time.Millisecond), tab.Total, tab.HTTPOnly, tab.HTTPS, tab.Valid, tab.Invalid)
}

// Table2WithTitle renders a Table 2-style breakdown under a custom title,
// used for the per-dataset appendix tables.
func Table2WithTitle(title string, tab analysis.Table2) string {
	out := Table2(tab)
	// Swap the canonical heading for the custom title.
	i := strings.Index(out, "\n")
	return section(title) + out[i+1:]
}
