package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/notify"
	"repro/internal/resultset"
	"repro/internal/scanner"
	"repro/internal/stats"
)

func TestFigure1Rendering(t *testing.T) {
	rows := []analysis.CountryRow{
		{Country: "us", Hosts: 100, Available: 100, HTTPS: 80, Valid: 70},
		{Country: "kr", Hosts: 50, Available: 48, HTTPS: 30, Valid: 12},
		{Country: "zz", Hosts: 10, Available: 5, HTTPS: 1, Valid: 0},
	}
	out := Figure1(rows, 2)
	if !strings.Contains(out, "United States") {
		t.Error("country name not resolved")
	}
	if !strings.Contains(out, "South Korea") {
		t.Error("second row missing")
	}
	if strings.Contains(out, "zz") {
		t.Error("topN truncation ignored")
	}
}

func TestKeyAlgoRendering(t *testing.T) {
	m := analysis.KeyAlgoMatrix{
		ByHostKey: []analysis.KeyCell{{Label: "RSA-2048", Total: 10, Valid: 7}},
		BySigAlgo: []analysis.KeyCell{{Label: "sha256WithRSAEncryption", Total: 10, Valid: 7}},
		Combined:  []analysis.KeyCell{{Label: "RSA-2048 / sha256WithRSAEncryption", Total: 10, Valid: 7}},
	}
	out := KeyAlgo("Figure 4: test", m)
	for _, want := range []string{"Host public key", "CA signing algorithm", "RSA-2048", "70.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("KeyAlgo missing %q", want)
		}
	}
}

func TestDurationsRendering(t *testing.T) {
	day := 24 * time.Hour
	d := analysis.DurationStats{
		ValidLifetimes:   []time.Duration{90 * day, 365 * day},
		InvalidLifetimes: []time.Duration{3650 * day, 100 * 365 * day},
		InvalidUnder2y:   0,
		InvalidOver3y:    2,
		Mult365:          2,
		Decades:          map[int]int{10: 1, 100: 1},
		EpochCerts:       1,
	}
	out := Durations("Figure 3: test", d)
	for _, want := range []string{"Issued for exactly 10y", "Unix-epoch issue dates", "36500"} {
		if !strings.Contains(out, want) {
			t.Errorf("Durations missing %q:\n%s", want, out)
		}
	}
}

func TestHostingRendering(t *testing.T) {
	out := Hosting("Figure 5: test", []analysis.HostingBucket{
		{Label: "Cloud", Total: 100, HTTPS: 80, Valid: 60},
		{Label: "Private", Total: 1000, HTTPS: 300, Valid: 250},
	})
	if !strings.Contains(out, "Cloud") || !strings.Contains(out, "60.0") {
		t.Errorf("Hosting render:\n%s", out)
	}
}

func rankSeries(name string, rate float64) analysis.RankSeries {
	fit, _ := stats.FitLinear([]float64{1, 2, 3, 4}, []float64{1, 0, 1, 0})
	return analysis.RankSeries{
		Name: name, N: 100, MeanRank: 500, StdRank: 100, ValidRate: rate,
		Bins: []stats.Bin{{Center: 100, Count: 10, Rate: rate}},
		Fit:  fit,
		Hosting: []analysis.HostingBucket{
			{Label: "Cloud", Total: 20, Valid: 15},
			{Label: "CDN", Total: 10, Valid: 8},
			{Label: "Private", Total: 70, Valid: 20},
		},
	}
}

func TestRankComparisonRendering(t *testing.T) {
	rc := analysis.RankComparison{
		Gov:       rankSeries("government", 0.3),
		Random:    rankSeries("uniform", 0.55),
		Matched:   rankSeries("matched", 0.56),
		TopNonGov: rankSeries("top", 0.7),
		Bins:      50,
	}
	out := RankComparison(rc)
	for _, want := range []string{"Figure 7", "Figure 6", "government", "Slope/100k"} {
		if !strings.Contains(out, want) {
			t.Errorf("RankComparison missing %q", want)
		}
	}
	bins := RankBins(rc)
	if !strings.Contains(bins, "Bin center") || !strings.Contains(bins, "30.0") {
		t.Errorf("RankBins:\n%s", bins)
	}
}

func TestKeyReuseRendering(t *testing.T) {
	s := analysis.KeyReuseStats{
		Clusters:          make([]analysis.ReuseCluster, 5),
		CrossCountry:      make([]analysis.ReuseCluster, 2),
		CrossCountryHosts: 12,
		ByCountrySpan:     map[int]int{2: 1, 24: 1},
	}
	out := KeyReuse(s)
	for _, want := range []string{"Section 5.3.3", "Certificates shared by 24 countries", "12"} {
		if !strings.Contains(out, want) {
			t.Errorf("KeyReuse missing %q:\n%s", want, out)
		}
	}
}

func TestCrossGovRendering(t *testing.T) {
	out := CrossGov(analysis.CrossGovStats{
		OutDegree:            map[string]int{"at": 70, "br": 10},
		InDegree:             map[string]int{"us": 55},
		ShareLinkingAtLeast7: 0.75,
		HeavilyLinked:        1,
		TopLinker:            "at",
		TopLinkerDegree:      70,
	})
	for _, want := range []string{"Figure A.5", "at", "75.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("CrossGov missing %q:\n%s", want, out)
		}
	}
}

func TestCampaignRendering(t *testing.T) {
	c := &notify.CampaignResult{
		Reports:    []notify.Report{{Country: "br"}},
		EmailsSent: 1, Delivered: 1, Supportive: 1,
		Deliveries: map[string]notify.Delivery{
			"br": {Country: "br", Delivered: true, Response: notify.Redirected},
		},
		SkippedAllValid:    []string{"no"},
		SkippedTerritories: []string{"pr"},
	}
	out := Campaign(c)
	for _, want := range []string{"Section 7.2", "Figure 13", "Supportive responses", "Population rank band"} {
		if !strings.Contains(out, want) {
			t.Errorf("Campaign missing %q", want)
		}
	}
}

func TestDatasetsRendering(t *testing.T) {
	out := Datasets("Table A.1: test", []DatasetBreakdown{
		{Name: "Govt. State Only Domains", Tab: analysis.Table2{Total: 827, HTTPOnly: 203, HTTPS: 561, Valid: 406, Invalid: 155, Unavailable: 63}},
	})
	for _, want := range []string{"Govt. State Only Domains", "827", "406"} {
		if !strings.Contains(out, want) {
			t.Errorf("Datasets missing %q", want)
		}
	}
}

func TestEVRendering(t *testing.T) {
	out := EV(analysis.EVStats{Hosts: 21, Analyzed: 500, Valid: 17})
	if !strings.Contains(out, "4.20%") {
		t.Errorf("EV render:\n%s", out)
	}
}

func TestScanSummaryLine(t *testing.T) {
	results := resultset.New([]scanner.Result{
		{Hostname: "a.gov", Available: true, ServesHTTP: true},
	}, resultset.Options{})
	out := Scan(results, 1500*time.Millisecond)
	if !strings.Contains(out, "scanned 1 hosts") || !strings.Contains(out, "1.5s") {
		t.Errorf("Scan line: %q", out)
	}
}

func TestTable2WithTitle(t *testing.T) {
	out := Table2WithTitle("Custom Title", analysis.Table2{Total: 1, HTTPOnly: 1, ByCategory: map[scanner.Category]int{}})
	if !strings.Contains(out, "Custom Title") {
		t.Error("custom title missing")
	}
	if strings.Contains(out, "Table 2: Worldwide govt.") {
		t.Error("canonical heading not replaced")
	}
}

func TestTableRowf(t *testing.T) {
	tab := newTable("A", "B")
	tab.rowf("x\t%d", 42)
	out := tab.String()
	if !strings.Contains(out, "42") {
		t.Errorf("rowf output:\n%s", out)
	}
}
