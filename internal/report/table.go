// Package report renders the study's tables and figures as aligned text,
// one renderer per artifact: Table 1/2, Figures 1-13 and the appendix
// tables and figures. The renderers print the same rows and series the
// paper reports, so a run's output can be placed side by side with the
// published numbers (see EXPERIMENTS.md).
package report

import (
	"fmt"
	"strings"
)

// table is a minimal aligned-text table writer.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table {
	return &table{header: header}
}

func (t *table) row(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) rowf(format string, args ...any) {
	t.row(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// String renders with column alignment: first column left, rest right.
func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				break
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func n(v int) string          { return fmt.Sprintf("%d", v) }
func f1(v float64) string     { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string     { return fmt.Sprintf("%.2f", v) }
func pctStr(v float64) string { return fmt.Sprintf("%.2f%%", v) }

func section(title string) string {
	return title + "\n" + strings.Repeat("=", len(title)) + "\n"
}
