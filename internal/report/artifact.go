package report

import (
	"fmt"
	"io"
)

// WriteArtifact writes one rendered experiment in the report's canonical
// framing — a "### <ID> — <Title>" heading followed by the body — so every
// consumer of the full suite (govreport -all, the golden corpus, the
// scheduler's differential tests) frames experiments identically.
func WriteArtifact(w io.Writer, id, title, body string) error {
	_, err := fmt.Fprintf(w, "### %s — %s\n\n%s\n", id, title, body)
	return err
}
