package govfilter

import (
	"testing"
)

func TestMatchPaperExamples(t *testing.T) {
	f := New()
	// The four example hostnames given verbatim in §4.1.1.
	cases := map[string]string{
		"environment.gov.au":        "au",
		"geoportal.capmas.gov.eg":   "eg",
		"stats.data.gouv.fr":        "fr",
		"www.pwebapps.ezv.admin.ch": "ch",
	}
	for host, wantCC := range cases {
		cc, ok := f.Match(host)
		if !ok || cc != wantCC {
			t.Errorf("Match(%q) = %q,%v; want %q,true", host, cc, ok, wantCC)
		}
	}
}

func TestMatchUSSpecialTLDs(t *testing.T) {
	f := New()
	for _, host := range []string{"nih.gov", "www.whitehouse.gov", "af.mil", "usda.fed.us", "ca.gov.us"} {
		if cc, ok := f.Match(host); !ok || cc != "us" {
			t.Errorf("Match(%q) = %q,%v; want us,true", host, cc, ok)
		}
	}
}

func TestMatchRejectsNonGov(t *testing.T) {
	f := New()
	for _, host := range []string{
		"www.example.com",
		"google.co.uk",
		"blog.example.org",
		"gov.example.com", // gov as a left label, not a suffix
		"notgov.us",
		"mygov.io",
	} {
		if f.IsGov(host) {
			t.Errorf("IsGov(%q) = true, want false", host)
		}
	}
}

func TestMatchRejectsBareSuffix(t *testing.T) {
	f := New()
	// The registry domain itself is not a government website.
	for _, host := range []string{"gov.au", "gouv.fr", "go.kr"} {
		if f.IsGov(host) {
			t.Errorf("IsGov(%q) = true for bare registry suffix", host)
		}
	}
}

func TestMatchSpoofLookalikes(t *testing.T) {
	f := New()
	// §7.3.2: etagov.sl is a phishing site posing as eta.gov.lk — the label
	// "etagov" is not the gov suffix, so it must not match.
	if f.IsGov("etagov.sl") {
		t.Error("IsGov(etagov.sl) = true; lookalike must be rejected")
	}
	if !f.IsGov("eta.gov.lk") {
		t.Error("IsGov(eta.gov.lk) = false; genuine host must match")
	}
	// abcgov.us style spoofs (§7.3.2) end in .us but not in gov.us.
	if f.IsGov("abcgov.us") {
		t.Error("IsGov(abcgov.us) = true; spoof must be rejected")
	}
}

func TestWhitelist(t *testing.T) {
	f := New()
	if f.IsGov("bundesregierung.de") {
		t.Fatal("German site should not match before whitelisting")
	}
	f.Whitelist("bundesregierung.de", "de")
	cc, ok := f.Match("bundesregierung.de")
	if !ok || cc != "de" {
		t.Errorf("whitelisted Match = %q,%v", cc, ok)
	}
	if f.WhitelistSize() != 1 {
		t.Errorf("WhitelistSize = %d", f.WhitelistSize())
	}
}

func TestNormalization(t *testing.T) {
	f := New()
	for _, raw := range []string{
		"HTTPS://Environment.GOV.AU/about",
		"http://environment.gov.au:8080/",
		"environment.gov.au.",
		"  environment.gov.au  ",
	} {
		if cc, ok := f.Match(raw); !ok || cc != "au" {
			t.Errorf("Match(%q) = %q,%v; want au,true", raw, cc, ok)
		}
	}
}

func TestFilterHostsDedup(t *testing.T) {
	f := New()
	in := []string{
		"a.gov.br", "b.example.com", "a.gov.br", "A.GOV.BR", "c.gob.mx",
	}
	got := f.FilterHosts(in)
	if len(got) != 2 || got[0] != "a.gov.br" || got[1] != "c.gob.mx" {
		t.Errorf("FilterHosts = %v", got)
	}
}

func TestHasValidCCTLD(t *testing.T) {
	cases := map[string]bool{
		"example.fr":     true,
		"site.gov.bd":    true,
		"nih.gov":        true,
		"army.mil":       true,
		"example.com":    false,
		"example.zz":     false,
		"noext":          false,
		"trailing.dot.":  false, // normalizes to valid uk? -> "trailing.dot" tld "dot" invalid
		"www.example.uk": true,
		"":               false,
	}
	for host, want := range cases {
		if got := HasValidCCTLD(host); got != want {
			t.Errorf("HasValidCCTLD(%q) = %v, want %v", host, got, want)
		}
	}
}

func TestMatchEmptyAndDegenerate(t *testing.T) {
	f := New()
	for _, host := range []string{"", ".", "..", "gov", "mil", "localhost"} {
		if f.IsGov(host) {
			t.Errorf("IsGov(%q) = true", host)
		}
	}
}
