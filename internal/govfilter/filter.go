// Package govfilter implements the conservative government hostname filter
// from §4.1.1 of the paper. A hostname is accepted only when it ends in a
// known government label followed by a valid country code (e.g.
// environment.gov.au, stats.data.gouv.fr, www.pwebapps.ezv.admin.ch), or in
// one of the United States' dedicated TLDs (.gov, .mil, .fed.us). The filter
// trades recall for precision — governments using .com/.org/.net are missed
// unless explicitly whitelisted (§4.2.3).
package govfilter

import (
	"strings"

	"repro/internal/geo"
)

// Filter classifies hostnames as government or non-government.
type Filter struct {
	// suffix -> ISO country code
	suffixes  map[string]string
	whitelist map[string]string // hostname -> country code
}

// New builds a Filter covering every country in the geo database.
func New() *Filter {
	f := &Filter{
		suffixes:  make(map[string]string),
		whitelist: make(map[string]string),
	}
	for _, c := range geo.All() {
		for _, s := range c.GovSuffixes() {
			f.suffixes[s] = c.Code
		}
	}
	return f
}

// Whitelist registers a hand-curated hostname that does not follow a
// standard government extension (§4.2.3), attributing it to a country.
func (f *Filter) Whitelist(hostname, countryCode string) {
	f.whitelist[normalize(hostname)] = strings.ToLower(countryCode)
}

// WhitelistSize reports how many hand-curated hostnames are registered.
func (f *Filter) WhitelistSize() int { return len(f.whitelist) }

// Match reports whether hostname is a government hostname, and if so,
// which country it belongs to.
func (f *Filter) Match(hostname string) (country string, ok bool) {
	h := normalize(hostname)
	if h == "" {
		return "", false
	}
	if cc, ok := f.whitelist[h]; ok {
		return cc, true
	}
	labels := strings.Split(h, ".")
	if len(labels) < 2 {
		return "", false
	}
	// Try the longest match first: three trailing labels (e.g. gov.co.uk
	// style or fed.us), then two (gov.au), then one (the US gov/mil TLDs).
	for take := 3; take >= 1; take-- {
		if take > len(labels) {
			continue
		}
		suffix := strings.Join(labels[len(labels)-take:], ".")
		if cc, ok := f.suffixes[suffix]; ok {
			// A bare suffix like "gov.au" is the registry itself, not a
			// government website; require at least one label in front.
			if len(labels) == take {
				return "", false
			}
			return cc, true
		}
	}
	return "", false
}

// IsGov reports whether hostname matches the government filter.
func (f *Filter) IsGov(hostname string) bool {
	_, ok := f.Match(hostname)
	return ok
}

// FilterHosts returns the subset of hostnames that match, de-duplicated,
// preserving first-seen order.
func (f *Filter) FilterHosts(hostnames []string) []string {
	seen := make(map[string]bool, len(hostnames))
	var out []string
	for _, h := range hostnames {
		n := normalize(h)
		if seen[n] {
			continue
		}
		if f.IsGov(n) {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// CountryOf returns the country code for a government hostname, or "" when
// the hostname does not match the filter.
func (f *Filter) CountryOf(hostname string) string {
	cc, _ := f.Match(hostname)
	return cc
}

// HasValidCCTLD reports whether the hostname ends in a country-code TLD
// known to the geo database. The crawler uses this to decide which links to
// follow (§4.2.2).
func HasValidCCTLD(hostname string) bool {
	h := normalize(hostname)
	i := strings.LastIndexByte(h, '.')
	if i < 0 || i == len(h)-1 {
		return false
	}
	tld := h[i+1:]
	if len(tld) != 2 {
		// The US .gov / .mil / generic TLDs are handled separately.
		return tld == "gov" || tld == "mil"
	}
	_, ok := geo.ByCode(tld)
	return ok
}

func normalize(hostname string) string {
	h := strings.ToLower(strings.TrimSpace(hostname))
	h = strings.TrimPrefix(h, "http://")
	h = strings.TrimPrefix(h, "https://")
	if i := strings.IndexByte(h, '/'); i >= 0 {
		h = h[:i]
	}
	if i := strings.IndexByte(h, ':'); i >= 0 {
		h = h[:i]
	}
	return strings.TrimSuffix(h, ".")
}
